"""One cluster shard: an open-loop Flash cache engine with shedding.

A shard is a full single-node hierarchy (DRAM PDC + Flash disk cache +
disk) driven by the same event-loop machinery as
:mod:`repro.sim.concurrent`, but open-loop: arrivals come at absolute
instants from the front-end's traffic plan instead of being pulled by
freed window slots.  On top of the outstanding-request window the shard
adds the cluster behaviours:

* **admission control** — when the window is full a request waits in a
  FIFO host queue; when that queue reaches ``shed_queue`` the request is
  shed (rejected before touching the cache, as a loaded server would
  return 503 rather than grow its backlog without bound);
* **retirement** — a shard leaves the cluster either at a scripted
  instant (``fail_at_us``: requests still in flight are *lost*, later
  completions don't count) or organically when graceful degradation
  trips the cache into its bypass state (``retire_on_degraded`` with a
  PR-1 fault ladder or PR-6 reliability model attached).  Arrivals after
  retirement are returned to the orchestrator as *redirects* for the
  survivors.  In-flight *reads* lost to a scripted kill are additionally
  reported with their loss bucket (``inflight_reads``) so the
  orchestrator can retry them on a surviving replica when the key is
  replicated (R > 1) — the read's data exists elsewhere, only this
  connection died;
* **repair** — a previously killed shard re-admitted at
  ``rejoin_at_us`` runs as a fresh *incarnation* (cold device, new
  derived seeds) whose stream starts at the rejoin instant.  Its
  catch-up is driven by ``sync_arrivals``: background anti-entropy ops
  (writes on the rejoiner warming the moved keys back in, paired source
  reads on the neighbours that held them) that occupy window slots —
  delaying foreground traffic exactly like the PR-7 state/timing split
  charges GC — but never shed and never count in the foreground
  accounting identity.

Determinism: :func:`run_shard` is a module-level pure function of its
picklable arguments (simlint SIM004), so it fans out through
:func:`repro.parallel.sweep` with byte-identical results at any worker
count.  Every per-shard RNG stream is derived via
:func:`repro.parallel.derive_seed` (incarnations derive distinct
streams: a repaired device is new hardware).

Accounting invariants, asserted at the end of every run::

    arrivals      == completed + shed + lost + redirected
    sync_arrived  == sync_completed + sync_lost + sync_skipped
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple, cast

from ..core.hierarchy import build_flash_system, FlashBackedSystem, \
    PendingRequest
from ..faults.injector import FaultConfig
from ..flash.channels import ChannelConfig, NandScheduler
from ..parallel import derive_seed
from ..reliability import ReliabilityConfig
from ..sim.events import Event, EventLoop, EventType
from ..telemetry import LatencyHistogram, Telemetry, TraceSampler
from .arrivals import Arrival

__all__ = ["run_shard"]


class _ShardEngine:
    """One shard run's event-loop state (not reusable).

    Handlers take simulated time only from ``loop.now_us`` (simlint
    SIM010); ties resolve in posting order.  Arrivals chain: each ARRIVE
    handler posts the next arrival at its absolute instant, so the heap
    holds one future arrival at a time (the sync stream chains the same
    way through SYNC events).
    """

    def __init__(self, system: FlashBackedSystem,
                 arrivals: Sequence[Arrival], queue_depth: int,
                 config: ChannelConfig, shed_queue: int,
                 fail_at_us: Optional[float], retire_on_degraded: bool,
                 bucket_us: float,
                 sync_arrivals: Sequence[Arrival] = (),
                 rejoin_at_us: Optional[float] = None,
                 shard_id: int = 0,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.system = system
        self.queue_depth = queue_depth
        self.shed_queue = shed_queue
        self.fail_at_us = fail_at_us
        self.retire_on_degraded = retire_on_degraded
        self.bucket_us = bucket_us
        self.rejoin_at_us = rejoin_at_us
        self.shard_id = shard_id
        self.telemetry = telemetry
        self.loop = EventLoop()
        self.scheduler = NandScheduler(config)
        self.response = LatencyHistogram("response_us")
        self.queue_delay = LatencyHistogram("queue_delay_us")
        self.service_latency = LatencyHistogram("service_latency_us")
        self.sampler: Optional[TraceSampler] = None
        self.position = 0
        self.wait: Deque[PendingRequest] = deque()
        self.slots = 0
        self.arrived = 0
        self.completed = 0
        self.shed = 0
        self.lost = 0
        self.lost_reads = 0
        self.lost_writes = 0
        self.redirects: List[Arrival] = []
        #: In-flight reads lost to the scripted kill, with the bucket
        #: their loss was charged to — the orchestrator may reclassify
        #: them as replica retries when R > 1.
        self.inflight_reads: List[Tuple[Arrival, int]] = []
        #: Simulated instant the shard left the cluster, if it did.
        self.retired_at_us: Optional[float] = None
        self.channel_stalls = 0
        self.gc_events = 0
        self.scrub_events = 0
        self.sync_arrived = 0
        self.sync_completed = 0
        self.sync_lost = 0
        self.sync_skipped = 0
        self._source = iter(arrivals)
        self._sync_source = iter(sync_arrivals)
        self._last_scrub_passes = self._scrub_passes()
        #: Per-time-bucket rows: [arrivals, completed, shed, lost,
        #: redirected, response_sum_us, response_max_us].
        self.buckets: Dict[int, List[float]] = {}
        loop = self.loop
        loop.register(EventType.ARRIVE, self._on_arrive)
        loop.register(EventType.DISPATCH, self._on_dispatch)
        loop.register(EventType.CHANNEL_BUSY, self._on_channel_busy)
        loop.register(EventType.COMPLETE, self._on_complete)
        loop.register(EventType.GC, self._on_gc)
        loop.register(EventType.SCRUB, self._on_scrub)
        loop.register(EventType.SYNC, self._on_sync)
        loop.register(EventType.REJOIN, self._on_rejoin)

    def _scrub_passes(self) -> int:
        scrubber = getattr(self.system, "scrubber", None)
        return scrubber.stats.passes if scrubber is not None else 0

    def _bucket(self, time_us: float) -> List[float]:
        index = int(time_us // self.bucket_us)
        row = self.buckets.get(index)
        if row is None:
            row = self.buckets[index] = [0, 0, 0, 0, 0, 0.0, 0.0]
        return row

    def _post_next_arrival(self) -> None:
        arrival = next(self._source, None)
        if arrival is not None:
            self.loop.post_at(arrival[0], Event(EventType.ARRIVE, arrival))

    def _post_next_sync(self) -> None:
        arrival = next(self._sync_source, None)
        if arrival is not None:
            self.loop.post_at(arrival[0], Event(EventType.SYNC, arrival))

    # -- event handlers ------------------------------------------------------

    def _on_arrive(self, event: Event) -> None:
        arrival: Arrival = event.payload
        loop = self.loop
        now_us = loop.now_us
        self.arrived += 1
        bucket = self._bucket(now_us)
        bucket[0] += 1
        if (self.retired_at_us is None and self.fail_at_us is not None
                and now_us >= self.fail_at_us):
            self.retired_at_us = self.fail_at_us
        if self.retired_at_us is not None:
            # The shard is out of the cluster; hand the request back to
            # the orchestrator for re-routing across the survivors.
            self.redirects.append(arrival)
            bucket[4] += 1
        elif self.slots >= self.queue_depth \
                and len(self.wait) >= self.shed_queue:
            self.shed += 1
            bucket[2] += 1
        else:
            self._admit(arrival, now_us)
        self._post_next_arrival()

    def _on_sync(self, event: Event) -> None:
        arrival: Arrival = event.payload
        self.sync_arrived += 1
        if self.retired_at_us is not None:
            # A sync source that has itself left the cluster cannot
            # stream pages; the orchestrator's plan was optimistic.
            self.sync_skipped += 1
        else:
            self._admit(arrival, self.loop.now_us, background=True)
            telemetry = self.telemetry
            if telemetry is not None:
                telemetry.sync_page(arrival[2], arrival[3])
        self._post_next_sync()

    def _on_rejoin(self, event: Event) -> None:
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.rejoin(self.shard_id, self.loop.now_us)

    def _admit(self, arrival: Arrival, now_us: float,
               background: bool = False) -> None:
        _, _, page, is_read = arrival
        loop = self.loop
        system = self.system
        # Functional execution at admission, in arrival order — the same
        # state/timing split as run_trace_concurrent, so cache contents
        # are a pure function of the admitted request sequence.
        if is_read:
            pending = system.submit_read(page)
        else:
            pending = system.submit_write(page)
        pending.arrive_us = now_us
        pending.context = (arrival, background)
        self.position += 1
        sampler = self.sampler
        if sampler is not None and self.position >= sampler.next_at:
            sampler.maybe_sample(self.position)
        if pending.gc_us > 0:
            loop.post(0.0, Event(EventType.GC, pending.gc_us))
        scrub_passes = self._scrub_passes()
        if scrub_passes > self._last_scrub_passes:
            self._last_scrub_passes = scrub_passes
            loop.post(0.0, Event(EventType.SCRUB, pending.page))
        if self.slots < self.queue_depth:
            self.slots += 1
            loop.post(system.config.cpu_us_per_request,
                      Event(EventType.DISPATCH, pending))
        else:
            self.wait.append(pending)
        # Graceful degradation may have tripped while serving this very
        # request; admitted work completes, later arrivals redirect.
        if (not background and self.retire_on_degraded
                and self.retired_at_us is None
                and self.system.flash.degraded):
            self.retired_at_us = now_us

    def _on_dispatch(self, event: Event) -> None:
        pending: PendingRequest = event.payload
        loop = self.loop
        pending.dispatch_us = loop.now_us
        ready_us = loop.now_us
        wait_us = 0.0
        scheduler = self.scheduler
        for op in pending.ops:
            placed = scheduler.schedule(ready_us, op.latency_us)
            if placed.wait_us > 0:
                loop.post_at(placed.start_us,
                             Event(EventType.CHANNEL_BUSY,
                                   (placed.channel, placed.wait_us)))
                wait_us += placed.wait_us
            ready_us = placed.end_us
        finish_us = pending.dispatch_us + pending.service_us + wait_us
        loop.post_at(finish_us, Event(EventType.COMPLETE, pending))

    def _on_channel_busy(self, event: Event) -> None:
        self.channel_stalls += 1

    def _on_complete(self, event: Event) -> None:
        pending: PendingRequest = event.payload
        loop = self.loop
        now_us = loop.now_us
        pending.finish_us = now_us
        self.system.complete_request(pending)
        arrival, background = cast(Tuple[Arrival, bool], pending.context)
        if background:
            if self.fail_at_us is not None and now_us > self.fail_at_us:
                self.sync_lost += 1
            else:
                self.sync_completed += 1
        else:
            bucket = self._bucket(now_us)
            if self.fail_at_us is not None and now_us > self.fail_at_us:
                # In flight when the shard died: the work happened, the
                # response never left the building.  A lost *read* is
                # recoverable on another replica — report it with its
                # loss bucket so the orchestrator can retry it there.
                self.lost += 1
                bucket[3] += 1
                if pending.is_read:
                    self.lost_reads += 1
                    self.inflight_reads.append(
                        (arrival, int(now_us // self.bucket_us)))
                else:
                    self.lost_writes += 1
            else:
                self.completed += 1
                response_us = now_us - pending.arrive_us
                self.response.observe(response_us)
                self.queue_delay.observe(
                    response_us - pending.service_us
                    - self.system.config.cpu_us_per_request)
                self.service_latency.observe(pending.service_us)
                bucket[1] += 1
                bucket[5] += response_us
                if response_us > bucket[6]:
                    bucket[6] = response_us
        self.slots -= 1
        if self.wait:
            # The freed slot picks up the oldest waiter; it pays the
            # same host CPU step an immediately-admitted request does.
            self.slots += 1
            loop.post(self.system.config.cpu_us_per_request,
                      Event(EventType.DISPATCH, self.wait.popleft()))

    def _on_gc(self, event: Event) -> None:
        self.gc_events += 1

    def _on_scrub(self, event: Event) -> None:
        self.scrub_events += 1

    # -- driving -------------------------------------------------------------

    def run(self) -> float:
        """Chain arrivals through the loop; returns the makespan (us)."""
        if self.rejoin_at_us is not None:
            self.loop.post_at(self.rejoin_at_us,
                              Event(EventType.REJOIN, self.shard_id))
        self._post_next_arrival()
        self._post_next_sync()
        loop_end_us = self.loop.run()
        horizon_us = self.scheduler.horizon_us()
        span_us = loop_end_us if loop_end_us >= horizon_us else horizon_us
        if self.fail_at_us is not None and self.retired_at_us is None:
            # A scripted kill happens whether or not any arrival landed
            # after it (the front-end routes around a dead shard).
            self.retired_at_us = self.fail_at_us
        accounted = (self.completed + self.shed + self.lost
                     + len(self.redirects))
        if accounted != self.arrived:
            raise RuntimeError(
                f"shard accounting drift: {self.arrived} arrivals vs "
                f"{self.completed} completed + {self.shed} shed + "
                f"{self.lost} lost + {len(self.redirects)} redirected")
        sync_accounted = (self.sync_completed + self.sync_lost
                         + self.sync_skipped)
        if sync_accounted != self.sync_arrived:
            raise RuntimeError(
                f"shard sync accounting drift: {self.sync_arrived} sync "
                f"arrivals vs {self.sync_completed} completed + "
                f"{self.sync_lost} lost + {self.sync_skipped} skipped")
        return span_us


def run_shard(shard_id: int, arrivals: List[Arrival], dram_bytes: int,
              flash_bytes: int, queue_depth: int, channels: int,
              planes: int, shed_queue: int, fail_at_us: Optional[float],
              retire_on_degraded: bool, fault_rate: float,
              reliability_rate: float, bucket_us: float,
              sample_interval: int, seed: int,
              sync_arrivals: Optional[List[Arrival]] = None,
              rejoin_at_us: Optional[float] = None,
              incarnation: int = 0) -> Dict[str, Any]:
    """Simulate one shard's run; the cluster sweep's worker entry point.

    Returns a picklable outcome dict: request accounting, latency
    histograms, per-time-bucket rows, redirected arrivals and lost
    in-flight reads (for the orchestrator's failover stages),
    device-health stats, and the shard's
    :class:`~repro.telemetry.Telemetry` handle (event-bus metrics plus
    :class:`~repro.telemetry.TraceSampler` health series).

    ``incarnation`` numbers repeated runs of the same shard id: a
    repaired shard re-admitted at ``rejoin_at_us`` is incarnation 1,
    built on freshly derived seed streams (new hardware), optionally
    warmed by ``sync_arrivals`` catch-up traffic.
    """
    if queue_depth < 1:
        raise ValueError("queue_depth must be >= 1")
    if shed_queue < 1:
        raise ValueError("shed_queue must be >= 1")
    generation = "" if incarnation == 0 else f":r{incarnation}"
    fault_config = None
    if fault_rate > 0.0:
        fault_config = FaultConfig.uniform(
            fault_rate,
            seed=derive_seed(seed, f"shard:{shard_id}{generation}:faults"))
    reliability_config = None
    if reliability_rate > 0.0:
        reliability_config = ReliabilityConfig.uniform(
            reliability_rate,
            seed=derive_seed(seed,
                             f"shard:{shard_id}{generation}:reliability"))
    system = build_flash_system(
        dram_bytes=dram_bytes, flash_bytes=flash_bytes,
        seed=derive_seed(seed, f"shard:{shard_id}{generation}:device"),
        fault_config=fault_config,
        reliability_config=reliability_config,
    )
    telemetry = Telemetry(sample_interval=sample_interval)
    telemetry.attach(system)
    engine = _ShardEngine(system, arrivals, queue_depth,
                          ChannelConfig(channels=channels, planes=planes),
                          shed_queue, fail_at_us, retire_on_degraded,
                          bucket_us, sync_arrivals=sync_arrivals or (),
                          rejoin_at_us=rejoin_at_us, shard_id=shard_id,
                          telemetry=telemetry)
    engine.sampler = TraceSampler(telemetry, system,
                                  interval=sample_interval)
    span_us = engine.run()
    engine.sampler.finalize(engine.position)
    telemetry.harvest_cache_counters(system.flash)
    telemetry.harvest_system_counters(system)
    flash = system.flash
    stats = flash.stats
    lookups = stats.read_hits + stats.read_misses
    controller_stats = flash.controller.stats
    return {
        "shard_id": shard_id,
        "incarnation": incarnation,
        "arrivals": engine.arrived,
        "completed": engine.completed,
        "shed": engine.shed,
        "lost": engine.lost,
        "lost_reads": engine.lost_reads,
        "lost_writes": engine.lost_writes,
        "redirected": len(engine.redirects),
        "redirects": engine.redirects,
        "inflight_reads": engine.inflight_reads,
        "retired_at_us": engine.retired_at_us,
        "rejoined_at_us": rejoin_at_us,
        "sync_arrived": engine.sync_arrived,
        "sync_completed": engine.sync_completed,
        "sync_lost": engine.sync_lost,
        "sync_skipped": engine.sync_skipped,
        "span_us": span_us,
        "response": engine.response,
        "queue_delay": engine.queue_delay,
        "service_latency": engine.service_latency,
        "buckets": {index: list(row)
                    for index, row in sorted(engine.buckets.items())},
        "channel_busy_us": list(engine.scheduler.channel_busy_us),
        "channel_stalls": engine.channel_stalls,
        "gc_events": engine.gc_events,
        "scrub_events": engine.scrub_events,
        "flash_miss_rate": (stats.read_misses / lookups if lookups
                            else 0.0),
        "live_capacity": flash.live_capacity_fraction(),
        "degraded": flash.degraded,
        "retired_blocks": stats.retired_blocks,
        "recovered_faults": stats.recovered_faults,
        "unrecovered_faults": stats.unrecovered_faults,
        "read_retries": controller_stats.read_retries,
        "uncorrectable_reads": controller_stats.uncorrectable_reads,
        "telemetry": telemetry,
    }
