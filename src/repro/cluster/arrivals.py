"""Open-loop arrival processes for the cluster front-end.

The paper's server experiments drive the platform with SURGE/TPC-style
client populations — traffic that arrives whether or not the storage
stack is keeping up.  This module generates that kind of load as a
non-homogeneous Poisson process (thinning against a peak rate) shaped by
one of four canonical patterns:

* ``steady``      — constant intensity at the peak rate;
* ``diurnal``     — one full day-curve cycle (raised cosine between a
  15% overnight floor and the midday peak);
* ``flash_crowd`` — a quiet 25% baseline with a sharp spike to the peak
  over the middle 15% of the run;
* ``drain``       — linear ramp from the peak down to zero (the tail of
  an incident, or a shard being drained for maintenance).

Every arrival is paired with a key drawn from the macro workload
generators (:func:`repro.workloads.macro.build_workload`), so the
cluster serves the same reference streams as the single-shard figures.
Arrivals carry a global sequence number: routing and redirect merges
order on ``(time_us, seq)``, never on anything process-dependent.
"""

from __future__ import annotations

import math
from random import Random
from typing import List, Tuple

from ..parallel import derive_seed
from ..workloads.macro import build_workload

__all__ = ["ARRIVAL_PATTERNS", "Arrival", "intensity",
           "sample_arrival_times", "build_arrivals"]

#: The supported open-loop traffic shapes.
ARRIVAL_PATTERNS = ("steady", "diurnal", "flash_crowd", "drain")

#: One open-loop request: ``(time_us, seq, page, is_read)``.  A plain
#: tuple so substreams pickle cheaply into shard worker processes.
Arrival = Tuple[float, int, int, bool]


def intensity(pattern: str, x: float) -> float:
    """Relative arrival intensity in [0, 1] at normalised time ``x``.

    ``x`` is the fraction of the run elapsed; the peak rate multiplies
    this shape to give the instantaneous rate.
    """
    if pattern == "steady":
        return 1.0
    if pattern == "diurnal":
        return 0.15 + 0.85 * 0.5 * (1.0 - math.cos(2.0 * math.pi * x))
    if pattern == "flash_crowd":
        return 1.0 if 0.45 <= x < 0.6 else 0.25
    if pattern == "drain":
        return max(0.0, 1.0 - x)
    raise ValueError(f"unknown arrival pattern {pattern!r}; "
                     f"known: {', '.join(ARRIVAL_PATTERNS)}")


def sample_arrival_times(pattern: str, peak_rps: float, duration_s: float,
                         seed: int) -> List[float]:
    """Arrival instants (us) of a non-homogeneous Poisson process.

    Thinning construction: candidates arrive as a homogeneous Poisson
    process at ``peak_rps`` and survive with probability
    ``intensity(pattern, t/duration)``.  One seeded RNG drives both the
    exponential gaps and the thinning draws, so the stream is a pure
    function of ``(pattern, peak_rps, duration_s, seed)``.
    """
    if peak_rps <= 0:
        raise ValueError("peak_rps must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    rng = Random(derive_seed(seed, f"cluster:arrivals:{pattern}"))
    duration_us = duration_s * 1e6
    peak_per_us = peak_rps / 1e6
    times: List[float] = []
    t_us = 0.0
    while True:
        t_us += rng.expovariate(peak_per_us)
        if t_us >= duration_us:
            return times
        if rng.random() < intensity(pattern, t_us / duration_us):
            times.append(t_us)


def build_arrivals(pattern: str, peak_rps: float, duration_s: float,
                   workload: str, footprint_pages: int,
                   seed: int) -> List[Arrival]:
    """The full open-loop request stream: times zipped with keys.

    Keys come from the named macro workload (its generators emit one
    page per record, so times and requests pair 1:1); the key stream's
    seed is derived independently of the timing stream's.
    """
    times = sample_arrival_times(pattern, peak_rps, duration_s, seed)
    records = build_workload(workload, num_records=len(times),
                             seed=derive_seed(seed, "cluster:keys"),
                             footprint_pages=footprint_pages)
    requests = [(page, record.is_read)
                for record in records for page in record.expand()]
    return [(time_us, seq, page, is_read)
            for seq, (time_us, (page, is_read))
            in enumerate(zip(times, requests))]
