"""Asyncio front-end for the cluster simulation.

:class:`ClusterService` is the serving shell around
:func:`repro.cluster.cluster.run_cluster`: it runs the deterministic
core in a worker thread (which in turn fans shards out across processes
via the parallel runner), while the asyncio loop stays free to stream
orchestration events — stage starts, shard completions — to a consumer
as they happen, the way a live cluster would publish health events.

The split keeps the determinism contract honest: everything
result-bearing happens inside ``run_cluster`` (simulated clocks, seeded
RNGs, ordered aggregation); the asyncio layer only *observes*.  Event
delivery order between concurrently-finishing shards is operational, not
part of the byte-identity contract — the feed files written from the
returned :class:`~repro.cluster.cluster.ClusterResult` are.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Optional

from .cluster import ClusterResult, ClusterScenario, run_cluster

__all__ = ["ClusterService", "serve"]


class ClusterService:
    """Run one cluster scenario with live progress streaming."""

    def __init__(self, scenario: ClusterScenario,
                 workers: int = 1) -> None:
        self.scenario = scenario
        self.workers = workers

    async def run(self,
                  on_event: Optional[Callable[[Dict[str, Any]], None]]
                  = None) -> ClusterResult:
        """Drive the simulation; returns the aggregated result.

        ``on_event`` receives each orchestration progress event on the
        asyncio loop's thread, in arrival order.
        """
        loop = asyncio.get_running_loop()
        events: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()

        def forward(event: Dict[str, Any]) -> None:
            # Called from the worker thread (and only there); hop onto
            # the loop's thread before touching the queue.
            loop.call_soon_threadsafe(events.put_nowait, event)

        future = loop.run_in_executor(
            None, lambda: run_cluster(self.scenario, workers=self.workers,
                                      progress=forward))
        pump: "asyncio.Future[Dict[str, Any]]" = asyncio.ensure_future(
            events.get())
        try:
            while True:
                done, _ = await asyncio.wait(
                    {future, pump}, return_when=asyncio.FIRST_COMPLETED)
                if pump in done:
                    if on_event is not None:
                        on_event(pump.result())
                    pump = asyncio.ensure_future(events.get())
                    continue
                # The simulation finished; drain stragglers and return.
                pump.cancel()
                while not events.empty():
                    if on_event is not None:
                        on_event(events.get_nowait())
                return await future
        finally:
            if not pump.done():
                pump.cancel()


def serve(scenario: ClusterScenario, workers: int = 1,
          on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
          ) -> ClusterResult:
    """Synchronous entry point: run the service on a fresh event loop."""
    return asyncio.run(ClusterService(scenario, workers).run(on_event))
