"""Consistent-hash routing across cache shards.

The front-end maps every page key onto one shard with a classic
consistent-hash ring: each shard owns ``vnodes`` points on a 64-bit
circle, and a key routes to the first shard point at or clockwise of the
key's own hash.  Retiring a shard (degraded device, scripted kill) only
remaps the keys that shard owned — the failover property the cluster
experiments measure.

Every hash is SHA-256 (simlint SIM003: builtin ``hash()`` is salted per
process and would make routing depend on ``PYTHONHASHSEED``).  Lookup
with an exclusion set walks clockwise past excluded shards, so failover
targets are exactly the next live owners on the circle.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Sequence, Tuple

__all__ = ["HashRing"]


def _point(text: str) -> int:
    """Stable 64-bit position on the circle."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Deterministic consistent-hash ring over integer shard ids."""

    def __init__(self, shard_ids: Sequence[int],
                 vnodes: int = 64) -> None:
        if not shard_ids:
            raise ValueError("ring needs at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError("duplicate shard ids")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.shard_ids: Tuple[int, ...] = tuple(sorted(shard_ids))
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = [
            (_point(f"shard:{shard_id}:{replica}"), shard_id)
            for shard_id in self.shard_ids
            for replica in range(vnodes)]
        points.sort()
        self._points = points
        self._hashes = [position for position, _ in points]

    def route(self, page: int, exclude: Iterable[int] = ()) -> int:
        """Owning shard for ``page``, skipping any shard in ``exclude``.

        Walks clockwise from the key's position; with exclusions the key
        lands on the next live shard's point, which is how traffic from
        a retired shard spreads across the survivors.
        """
        excluded = frozenset(exclude)
        points = self._points
        start = bisect.bisect_left(self._hashes, _point(f"page:{page}"))
        for offset in range(len(points)):
            position = (start + offset) % len(points)
            shard_id = points[position][1]
            if shard_id not in excluded:
                return shard_id
        raise ValueError("every shard is excluded; nowhere to route")
