"""Consistent-hash routing across cache shards.

The front-end maps every page key onto shards with a classic
consistent-hash ring: each shard owns ``vnodes`` points on a 64-bit
circle, and a key routes to the first shard point at or clockwise of the
key's own hash.  Retiring a shard (degraded device, scripted kill) only
remaps the keys that shard owned — the failover property the cluster
experiments measure.

Replication (``route_replicas``) extends the same walk: a key's replica
set is the first R *distinct* shards clockwise of its hash, skipping
repeated vnodes of shards already collected.  The successor-walk
construction keeps the minimal-move property in both directions: a
shard leaving the ring only moves its own keys onto their next
successors, and a repaired shard rejoining only takes its own keys
back.

Every hash is SHA-256 (simlint SIM003: builtin ``hash()`` is salted per
process and would make routing depend on ``PYTHONHASHSEED``).  Lookup
with an exclusion set walks clockwise past excluded shards, so failover
targets are exactly the next live owners on the circle.  A walk that
runs out of shards — every shard excluded, or a replication factor
above the live population — raises the typed
:class:`~repro.cluster.errors.ClusterError` rather than looping or
silently under-providing replicas.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Tuple

from .errors import ClusterError

__all__ = ["HashRing"]


def _point(text: str) -> int:
    """Stable 64-bit position on the circle."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Deterministic consistent-hash ring over integer shard ids."""

    def __init__(self, shard_ids: Iterable[int],
                 vnodes: int = 64) -> None:
        ids = list(shard_ids)
        if not ids:
            raise ValueError("ring needs at least one shard")
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate shard ids")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.shard_ids: Tuple[int, ...] = tuple(sorted(ids))
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = [
            (_point(f"shard:{shard_id}:{replica}"), shard_id)
            for shard_id in self.shard_ids
            for replica in range(vnodes)]
        points.sort()
        self._points = points
        self._hashes = [position for position, _ in points]

    def route(self, page: int, exclude: Iterable[int] = ()) -> int:
        """Owning shard for ``page``, skipping any shard in ``exclude``.

        Walks clockwise from the key's position; with exclusions the key
        lands on the next live shard's point, which is how traffic from
        a retired shard spreads across the survivors.  Raises
        :class:`ClusterError` when every shard is excluded.
        """
        return self.route_replicas(page, 1, exclude=exclude)[0]

    def route_replicas(self, page: int, replicas: int,
                       exclude: Iterable[int] = ()) -> Tuple[int, ...]:
        """The first ``replicas`` distinct live shards clockwise of
        ``page``'s position, in walk order.

        Element 0 is the key's primary (what :meth:`route` returns);
        the rest are its replica successors.  Reads are served by the
        first live member; writes fan out to all of them.  Raises
        :class:`ClusterError` when fewer than ``replicas`` distinct
        shards survive the exclusion — silently returning a short
        tuple would under-provide the key without anyone noticing.
        """
        if replicas < 1:
            raise ClusterError("replicas must be >= 1")
        excluded = frozenset(exclude)
        live = len(set(self.shard_ids) - excluded)
        if live < replicas:
            raise ClusterError(
                f"cannot place {replicas} replicas on {live} live "
                f"shard(s) ({len(self.shard_ids)} total, "
                f"{len(excluded & set(self.shard_ids))} excluded)")
        points = self._points
        start = bisect.bisect_left(self._hashes, _point(f"page:{page}"))
        chosen: List[int] = []
        for offset in range(len(points)):
            position = (start + offset) % len(points)
            shard_id = points[position][1]
            if shard_id in excluded or shard_id in chosen:
                continue
            chosen.append(shard_id)
            if len(chosen) == replicas:
                return tuple(chosen)
        raise ClusterError(  # pragma: no cover - guarded by `live` above
            f"ring walk exhausted before placing {replicas} replicas")
