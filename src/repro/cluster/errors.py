"""Typed errors of the cluster layer.

Routing and orchestration failures raise :class:`ClusterError` so
callers can distinguish "the fleet cannot satisfy this request"
(every shard excluded, replication factor above the live population,
an inconsistent chaos schedule) from genuine bugs.  It subclasses
``ValueError`` for backward compatibility with callers that predate
the typed hierarchy (the ring used to raise bare ``ValueError``).
"""

from __future__ import annotations

__all__ = ["ClusterError"]


class ClusterError(ValueError):
    """The cluster cannot satisfy a routing or orchestration request.

    Raised when a ring walk runs out of live shards (every shard
    excluded, or a replication factor larger than the live population)
    and when a :class:`~repro.cluster.chaos.ChaosSchedule` is
    inconsistent (a rejoin without a kill, duplicate kills, a cascade
    that retires the whole fleet).
    """
