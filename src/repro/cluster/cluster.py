"""Cluster orchestration: plan, fan out, fail over, aggregate.

:func:`run_cluster` simulates a consistent-hash cluster of Flash-cache
shards under one open-loop traffic plan:

1. **Plan** (serial, deterministic): sample the arrival process
   (:mod:`repro.cluster.arrivals`), route every request to a shard on
   the :class:`~repro.cluster.ring.HashRing` — arrivals after a scripted
   kill instant route around the doomed shard, as a cluster membership
   service would have removed it;
2. **Stage 1** — run the *retirable* shards (scripted kill target,
   and/or an aged shard whose fault/reliability ladder may trip graceful
   degradation) through :func:`repro.parallel.sweep`.  Each returns the
   arrivals it could not serve after retirement as redirects;
3. **Stage 2** — merge the redirects into the survivors' substreams (in
   ``(time_us, seq)`` order, routed around every stage-1 shard) and run
   the survivors.  With no retirable shards there is a single stage;
4. **Aggregate**: merge histograms, telemetry, and time buckets in
   shard-id order and assert the accounting invariant — every planned
   arrival is completed, shed, or lost exactly once::

       planned == sum(completed) + sum(shed) + sum(lost)

Because both stages fan out through :func:`repro.parallel.sweep` with
module-level task functions and plain-data kwargs, the entire result —
feed included — is byte-identical at any ``workers`` setting.  The known
modelling bound: stage-2 survivors absorb failover traffic but do not
themselves retire mid-run (a second-order cascade the single-failure
scenarios here never trigger).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..parallel import SweepResult, SweepTask, merge_telemetry, sweep
from ..telemetry import LatencyHistogram, Telemetry
from .arrivals import ARRIVAL_PATTERNS, Arrival, build_arrivals
from .ring import HashRing
from .shard import run_shard

__all__ = ["ClusterScenario", "ClusterResult", "run_cluster"]

#: Orchestration progress events (parent process only, never pickled):
#: ``{"kind": "stage"|"shard", ...}``.
ProgressCallback = Callable[[Dict[str, Any]], None]

#: Per-bucket row layout produced by the shard engine.
_BUCKET_FIELDS = ("arrivals", "completed", "shed", "lost", "redirected",
                  "response_sum_us", "response_max_us")


@dataclass(frozen=True)
class ClusterScenario:
    """One cluster configuration: traffic plan, shard fleet, failures."""

    shards: int = 3
    pattern: str = "steady"
    #: Peak arrival rate across the whole cluster (requests/second).
    rate_rps: float = 4000.0
    duration_s: float = 1.0
    workload: str = "specweb99"
    footprint_pages: int = 16384
    # -- per-shard platform --------------------------------------------------
    dram_bytes: int = 4 << 20
    flash_bytes: int = 16 << 20
    queue_depth: int = 8
    channels: int = 2
    planes: int = 2
    #: Host wait-queue length beyond the window before requests shed.
    shed_queue: int = 64
    # -- failure script ------------------------------------------------------
    #: Shard to kill mid-run (None = no scripted failure).
    kill_shard: Optional[int] = None
    #: Kill instant (us); defaults to mid-run when ``kill_shard`` is set.
    kill_at_us: Optional[float] = None
    #: Shard carrying the PR-1 fault ladder / PR-6 reliability model.
    aged_shard: Optional[int] = None
    aged_fault_rate: float = 0.0
    aged_reliability_rate: float = 0.0
    #: Whether the aged shard leaves the cluster when degradation trips.
    retire_on_degraded: bool = True
    # -- observability -------------------------------------------------------
    bucket_ms: float = 50.0
    sample_interval: int = 1000
    vnodes: int = 64
    seed: int = 42

    def effective_kill_at_us(self) -> Optional[float]:
        if self.kill_shard is None:
            return None
        if self.kill_at_us is not None:
            return self.kill_at_us
        return self.duration_s * 1e6 / 2.0


@dataclass
class ClusterResult:
    """Aggregated outcome of one cluster run."""

    scenario: Dict[str, Any]
    arrivals: int
    completed: int
    shed: int
    lost: int
    redirected: int
    span_us: float
    throughput_rps: float
    response: LatencyHistogram
    queue_delay: LatencyHistogram
    #: Per-shard summaries (shard-id order), each with its own buckets.
    shards: List[Dict[str, Any]] = field(default_factory=list)
    #: Merged per-shard telemetry (event-bus metrics + sampler series).
    telemetry: Optional[Telemetry] = None

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.arrivals if self.arrivals else 0.0

    def bucket_rows(self) -> List[Dict[str, Any]]:
        """Time-bucketed feed rows: per-shard rows then a cluster row
        per bucket, ordered by (time, shard) — the deterministic body of
        the JSON/CSV feed."""
        bucket_ms = self.scenario["bucket_ms"]
        merged: Dict[int, List[float]] = {}
        rows: List[Dict[str, Any]] = []
        for shard in self.shards:
            for index, values in shard["buckets"].items():
                rows.append(self._row(bucket_ms, index, str(shard["shard_id"]),
                                      values))
                into = merged.setdefault(index, [0, 0, 0, 0, 0, 0.0, 0.0])
                for position, value in enumerate(values):
                    into[position] += value
        for index, values in merged.items():
            # A redirected arrival was counted at its origin *and* again
            # at the shard that finally served it; the cluster view
            # counts it once.
            cluster_values = list(values)
            cluster_values[0] -= cluster_values[4]
            cluster_values[6] = max(
                shard["buckets"][index][6] for shard in self.shards
                if index in shard["buckets"])
            rows.append(self._row(bucket_ms, index, "cluster",
                                  cluster_values))
        rows.sort(key=lambda row: (row["t_ms"],
                                   -1 if row["shard"] == "cluster"
                                   else int(row["shard"])))
        return rows

    @staticmethod
    def _row(bucket_ms: float, index: int, shard: str,
             values: Sequence[float]) -> Dict[str, Any]:
        completed = int(values[1])
        row: Dict[str, Any] = {"t_ms": index * bucket_ms, "shard": shard}
        for name, value in zip(_BUCKET_FIELDS[:5], values[:5]):
            row[name] = int(value)
        row["mean_response_us"] = (round(values[5] / completed, 3)
                                   if completed else 0.0)
        row["max_response_us"] = round(values[6], 3)
        return row

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready document (histograms reduced to percentiles)."""
        return {
            "scenario": self.scenario,
            "totals": {
                "arrivals": self.arrivals,
                "completed": self.completed,
                "shed": self.shed,
                "lost": self.lost,
                "redirected": self.redirected,
                "shed_fraction": round(self.shed_fraction, 6),
                "span_us": round(self.span_us, 3),
                "throughput_rps": round(self.throughput_rps, 3),
            },
            "latency": {
                "response_mean_us": round(self.response.mean, 3),
                "response_p50_us": round(self.response.p50, 3),
                "response_p95_us": round(self.response.p95, 3),
                "response_p99_us": round(self.response.p99, 3),
                "queue_delay_mean_us": round(self.queue_delay.mean, 3),
                "queue_delay_p99_us": round(self.queue_delay.p99, 3),
            },
            "shards": [self._shard_dict(shard) for shard in self.shards],
            "buckets": self.bucket_rows(),
        }

    @staticmethod
    def _shard_dict(shard: Dict[str, Any]) -> Dict[str, Any]:
        out = {key: value for key, value in shard.items()
               if key != "buckets"}
        return out


def _validate(scenario: ClusterScenario) -> None:
    if scenario.shards < 1:
        raise ValueError("shards must be >= 1")
    if scenario.pattern not in ARRIVAL_PATTERNS:
        raise ValueError(f"unknown arrival pattern {scenario.pattern!r}; "
                         f"known: {', '.join(ARRIVAL_PATTERNS)}")
    for label, shard_id in (("kill_shard", scenario.kill_shard),
                            ("aged_shard", scenario.aged_shard)):
        if shard_id is not None and not 0 <= shard_id < scenario.shards:
            raise ValueError(f"{label}={shard_id} outside the fleet "
                             f"(0..{scenario.shards - 1})")


def _retirable_ids(scenario: ClusterScenario) -> List[int]:
    """Shards that may leave the cluster mid-run (stage-1 members)."""
    risky = []
    if scenario.kill_shard is not None:
        risky.append(scenario.kill_shard)
    if (scenario.aged_shard is not None and scenario.retire_on_degraded
            and (scenario.aged_fault_rate > 0.0
                 or scenario.aged_reliability_rate > 0.0)
            and scenario.aged_shard not in risky):
        risky.append(scenario.aged_shard)
    return sorted(risky)


def _shard_task(scenario: ClusterScenario, shard_id: int,
                stream: List[Arrival],
                kill_at_us: Optional[float]) -> SweepTask:
    aged = shard_id == scenario.aged_shard
    return SweepTask(
        key=f"cluster:shard={shard_id}",
        fn=run_shard,
        kwargs={
            "shard_id": shard_id,
            "arrivals": stream,
            "dram_bytes": scenario.dram_bytes,
            "flash_bytes": scenario.flash_bytes,
            "queue_depth": scenario.queue_depth,
            "channels": scenario.channels,
            "planes": scenario.planes,
            "shed_queue": scenario.shed_queue,
            "fail_at_us": (kill_at_us
                           if shard_id == scenario.kill_shard else None),
            "retire_on_degraded": aged and scenario.retire_on_degraded,
            "fault_rate": scenario.aged_fault_rate if aged else 0.0,
            "reliability_rate": (scenario.aged_reliability_rate
                                 if aged else 0.0),
            "bucket_us": scenario.bucket_ms * 1000.0,
            "sample_interval": scenario.sample_interval,
            "seed": scenario.seed,
        })


def _run_stage(scenario: ClusterScenario, stage: str, shard_ids: List[int],
               substreams: Dict[int, List[Arrival]],
               kill_at_us: Optional[float], workers: int,
               progress: Optional[ProgressCallback],
               ) -> Dict[int, Dict[str, Any]]:
    """Fan one stage's shards out through the parallel runner."""
    if not shard_ids:
        return {}
    if progress is not None:
        progress({"kind": "stage", "stage": stage,
                  "shards": list(shard_ids)})
    tasks = [_shard_task(scenario, shard_id, substreams[shard_id],
                         kill_at_us) for shard_id in shard_ids]
    stage_progress: Optional[Callable[[SweepResult, int, int], None]] = None
    if progress is not None:
        callback = progress

        def _stage_progress(result: SweepResult, done: int,
                            total: int) -> None:
            callback({"kind": "shard", "stage": stage, "key": result.key,
                      "ok": result.ok, "done": done, "total": total})
        stage_progress = _stage_progress
    results = sweep(tasks, workers=workers, progress=stage_progress)
    return {shard_id: result.unwrap()
            for shard_id, result in zip(shard_ids, results)}


def run_cluster(scenario: ClusterScenario, workers: int = 1,
                progress: Optional[ProgressCallback] = None,
                ) -> ClusterResult:
    """Simulate one cluster scenario; identical at any worker count."""
    _validate(scenario)
    kill_at_us = scenario.effective_kill_at_us()
    arrivals = build_arrivals(scenario.pattern, scenario.rate_rps,
                              scenario.duration_s, scenario.workload,
                              scenario.footprint_pages, scenario.seed)
    ring = HashRing(range(scenario.shards), vnodes=scenario.vnodes)
    substreams: Dict[int, List[Arrival]] = {
        shard_id: [] for shard_id in range(scenario.shards)}
    kill = scenario.kill_shard
    for arrival in arrivals:
        time_us, _, page, _ = arrival
        if kill is not None and kill_at_us is not None \
                and time_us >= kill_at_us:
            target = ring.route(page, exclude=(kill,))
        else:
            target = ring.route(page)
        substreams[target].append(arrival)

    risky = _retirable_ids(scenario)
    healthy = [shard_id for shard_id in range(scenario.shards)
               if shard_id not in risky]
    outcomes = _run_stage(scenario, "retirable", risky, substreams,
                          kill_at_us, workers, progress)

    redirects: List[Arrival] = []
    for shard_id in risky:
        redirects.extend(outcomes[shard_id]["redirects"])
    if redirects:
        if not healthy:
            raise ValueError("every shard retired; failover traffic has "
                             "nowhere to go")
        for arrival in redirects:
            target = ring.route(arrival[2], exclude=risky)
            substreams[target].append(arrival)
        for shard_id in healthy:
            substreams[shard_id].sort(key=lambda a: (a[0], a[1]))
    outcomes.update(_run_stage(scenario, "serving", healthy, substreams,
                               kill_at_us, workers, progress))
    return _combine(scenario, arrivals, outcomes)


def _combine(scenario: ClusterScenario, arrivals: List[Arrival],
             outcomes: Dict[int, Dict[str, Any]]) -> ClusterResult:
    ordered = [outcomes[shard_id] for shard_id in sorted(outcomes)]
    planned = len(arrivals)
    completed = sum(outcome["completed"] for outcome in ordered)
    shed = sum(outcome["shed"] for outcome in ordered)
    lost = sum(outcome["lost"] for outcome in ordered)
    redirected = sum(outcome["redirected"] for outcome in ordered)
    arrived = sum(outcome["arrivals"] for outcome in ordered)
    if completed + shed + lost != planned or arrived - redirected != planned:
        raise RuntimeError(
            f"cluster lost-request accounting drift: planned {planned}, "
            f"completed {completed} + shed {shed} + lost {lost} "
            f"(arrived {arrived}, redirected {redirected})")
    response = LatencyHistogram("cluster.response_us")
    queue_delay = LatencyHistogram("cluster.queue_delay_us")
    for outcome in ordered:
        response.merge(outcome["response"])
        queue_delay.merge(outcome["queue_delay"])
    span_us = max(outcome["span_us"] for outcome in ordered)
    shards = []
    for outcome in ordered:
        summary = {key: value for key, value in outcome.items()
                   if key not in ("redirects", "response", "queue_delay",
                                  "service_latency", "telemetry")}
        summary["response_p50_us"] = round(outcome["response"].p50, 3)
        summary["response_p95_us"] = round(outcome["response"].p95, 3)
        summary["response_p99_us"] = round(outcome["response"].p99, 3)
        summary["mean_queue_delay_us"] = round(
            outcome["queue_delay"].mean, 3)
        shards.append(summary)
    return ClusterResult(
        scenario=asdict(scenario),
        arrivals=planned,
        completed=completed,
        shed=shed,
        lost=lost,
        redirected=redirected,
        span_us=span_us,
        throughput_rps=(completed / (span_us * 1e-6) if span_us > 0
                        else 0.0),
        response=response,
        queue_delay=queue_delay,
        shards=shards,
        telemetry=merge_telemetry(outcome["telemetry"]
                                  for outcome in ordered),
    )
