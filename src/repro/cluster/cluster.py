"""Cluster orchestration: plan, fan out, cascade, repair, aggregate.

:func:`run_cluster` simulates a consistent-hash cluster of Flash-cache
shards under one open-loop traffic plan:

1. **Plan** (serial, deterministic): sample the arrival process
   (:mod:`repro.cluster.arrivals`) and route every request onto the
   :class:`~repro.cluster.ring.HashRing`.  With ``replicas`` R > 1 each
   key owns the first R distinct live shards clockwise of its hash:
   reads go to the first live replica, writes fan out to all of them
   (``planned_ops`` counts the fan-out).  Membership is time-aware — the
   :class:`~repro.cluster.chaos.ChaosSchedule` says which shards are
   dead at each instant, so post-kill arrivals route around corpses and
   post-rejoin arrivals flow back to the repaired shard.  Catch-up sync
   streams (the rejoiner's moved keys, plus the paired source reads on
   the shards that held them) are also planned here, as background
   traffic at the rejoin instant;
2. **Scripted stages**: kills grouped by identical instant run in
   ascending kill order.  Each stage returns the arrivals it could not
   serve after retirement; those redirects (and, at R > 1, in-flight
   reads reclassified as replica retries) are merged into the streams of
   nodes that have not run yet — which includes *later* kill victims, so
   a survivor absorbing failover traffic can itself die mid-run and
   bounce that traffic onward (a survivor cascade);
3. **Organic stage**: the aged shard (fault/reliability ladder with
   ``retire_on_degraded``) runs after every scripted stage, so its
   redirect targets are known-final.  Failover traffic never routes *to*
   the organic-risk shard — the membership service already flags it;
4. **Serving stage**: the healthy shards plus the rejoined incarnation
   of every repaired shard (cold device, freshly derived seeds,
   foreground stream starting at the rejoin instant, background sync
   warming its moved keys back in);
5. **Aggregate**: merge incarnations per shard id, then histograms,
   telemetry, and time buckets in shard-id order, asserting the
   replica-aware accounting identity — every planned operation (reads
   once, writes once per replica) terminates exactly once::

       planned_ops == sum(completed) + sum(shed) + sum(lost)
       planned_ops == sum(arrived)   - sum(redirected)

Because every stage fans out through :func:`repro.parallel.sweep` with
module-level task functions and plain-data kwargs, the entire result —
feed included — is byte-identical at any ``workers`` setting, and an
R=1 scenario with no cascade or rejoin reproduces the PR-8 two-stage
planner's results exactly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Sequence, Set,
                    Tuple)

from ..parallel import SweepResult, SweepTask, merge_telemetry, sweep
from ..telemetry import LatencyHistogram, Telemetry
from .arrivals import ARRIVAL_PATTERNS, Arrival, build_arrivals
from .chaos import ChaosSchedule
from .errors import ClusterError
from .ring import HashRing
from .shard import run_shard

__all__ = ["ClusterScenario", "ClusterResult", "run_cluster"]

#: Orchestration progress events (parent process only, never pickled):
#: ``{"kind": "stage"|"shard", ...}``.
ProgressCallback = Callable[[Dict[str, Any]], None]

#: Per-bucket row layout produced by the shard engine.
_BUCKET_FIELDS = ("arrivals", "completed", "shed", "lost", "redirected",
                  "response_sum_us", "response_max_us")

#: One schedulable engine run: ``(shard_id, incarnation)``.  Incarnation
#: 0 is the shard's original run; incarnation 1 is its post-repair rerun.
_Node = Tuple[int, int]

#: Outcome counters summed when merging a shard's incarnations.
_SUMMED_KEYS = ("arrivals", "completed", "shed", "lost", "lost_reads",
                "lost_writes", "redirected", "sync_arrived",
                "sync_completed", "sync_lost", "sync_skipped",
                "channel_stalls", "gc_events", "scrub_events")

#: Outcome device-health fields reported from the newest incarnation
#: (a repaired shard is new hardware; the old device left the fleet).
_LATEST_KEYS = ("flash_miss_rate", "live_capacity", "degraded",
                "retired_blocks", "recovered_faults",
                "unrecovered_faults", "read_retries",
                "uncorrectable_reads")


@dataclass(frozen=True)
class ClusterScenario:
    """One cluster configuration: traffic plan, shard fleet, failures."""

    shards: int = 3
    pattern: str = "steady"
    #: Peak arrival rate across the whole cluster (requests/second).
    rate_rps: float = 4000.0
    duration_s: float = 1.0
    workload: str = "specweb99"
    footprint_pages: int = 16384
    # -- per-shard platform --------------------------------------------------
    dram_bytes: int = 4 << 20
    flash_bytes: int = 16 << 20
    queue_depth: int = 8
    channels: int = 2
    planes: int = 2
    #: Host wait-queue length beyond the window before requests shed.
    shed_queue: int = 64
    #: Replication factor: each key's first R distinct ring successors.
    replicas: int = 1
    # -- failure script ------------------------------------------------------
    #: Shard to kill mid-run (None = no scripted failure).
    kill_shard: Optional[int] = None
    #: Kill instant (us); defaults to mid-run when ``kill_shard`` is set.
    kill_at_us: Optional[float] = None
    #: Additional scripted kills ``(shard, at_us)`` — survivor cascades.
    cascade: Tuple[Tuple[int, float], ...] = ()
    #: Instant the repaired ``kill_shard`` rejoins the ring (None =
    #: stays dead).  Triggers the catch-up sync of its moved keys.
    rejoin_at_us: Optional[float] = None
    #: Shard carrying the PR-1 fault ladder / PR-6 reliability model.
    aged_shard: Optional[int] = None
    aged_fault_rate: float = 0.0
    aged_reliability_rate: float = 0.0
    #: Whether the aged shard leaves the cluster when degradation trips.
    retire_on_degraded: bool = True
    # -- observability -------------------------------------------------------
    bucket_ms: float = 50.0
    sample_interval: int = 1000
    vnodes: int = 64
    seed: int = 42

    def effective_kill_at_us(self) -> Optional[float]:
        if self.kill_shard is None:
            return None
        if self.kill_at_us is not None:
            return self.kill_at_us
        return self.duration_s * 1e6 / 2.0

    def chaos(self) -> ChaosSchedule:
        """The scenario's scripted failure/repair timeline."""
        return ChaosSchedule.from_scenario(
            self.kill_shard, self.effective_kill_at_us(),
            self.cascade, self.rejoin_at_us)


@dataclass
class ClusterResult:
    """Aggregated outcome of one cluster run."""

    scenario: Dict[str, Any]
    #: Planned operations: one per read, one per replica per write.
    #: Equals the client request count when ``replicas`` is 1.
    arrivals: int
    completed: int
    shed: int
    lost: int
    redirected: int
    span_us: float
    throughput_rps: float
    response: LatencyHistogram
    queue_delay: LatencyHistogram
    #: Distinct client requests (before write fan-out).
    requests: int = 0
    #: Loss split: reads lost in flight are recoverable at R > 1 (and
    #: then counted as ``redirected`` retries instead); writes lost on
    #: one replica stay lost there even though sibling copies landed.
    lost_reads: int = 0
    lost_writes: int = 0
    # -- repair/catch-up traffic (background, outside the identity) ----------
    sync_arrived: int = 0
    sync_completed: int = 0
    sync_lost: int = 0
    sync_skipped: int = 0
    #: Per-shard summaries (shard-id order), incarnations merged, each
    #: with its own buckets.
    shards: List[Dict[str, Any]] = field(default_factory=list)
    #: Merged per-shard telemetry (event-bus metrics + sampler series).
    telemetry: Optional[Telemetry] = None

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.arrivals if self.arrivals else 0.0

    def bucket_rows(self) -> List[Dict[str, Any]]:
        """Time-bucketed feed rows: per-shard rows then a cluster row
        per bucket, ordered by (time, shard) — the deterministic body of
        the JSON/CSV feed."""
        bucket_ms = self.scenario["bucket_ms"]
        merged: Dict[int, List[float]] = {}
        rows: List[Dict[str, Any]] = []
        for shard in self.shards:
            for index, values in shard["buckets"].items():
                rows.append(self._row(bucket_ms, index, str(shard["shard_id"]),
                                      values))
                into = merged.setdefault(index, [0, 0, 0, 0, 0, 0.0, 0.0])
                for position, value in enumerate(values):
                    into[position] += value
        for index, values in merged.items():
            # A redirected arrival was counted at its origin *and* again
            # at the shard that finally served it; the cluster view
            # counts it once.
            cluster_values = list(values)
            cluster_values[0] -= cluster_values[4]
            cluster_values[6] = max(
                shard["buckets"][index][6] for shard in self.shards
                if index in shard["buckets"])
            rows.append(self._row(bucket_ms, index, "cluster",
                                  cluster_values))
        rows.sort(key=lambda row: (row["t_ms"],
                                   -1 if row["shard"] == "cluster"
                                   else int(row["shard"])))
        return rows

    @staticmethod
    def _row(bucket_ms: float, index: int, shard: str,
             values: Sequence[float]) -> Dict[str, Any]:
        completed = int(values[1])
        row: Dict[str, Any] = {"t_ms": index * bucket_ms, "shard": shard}
        for name, value in zip(_BUCKET_FIELDS[:5], values[:5]):
            row[name] = int(value)
        row["mean_response_us"] = (round(values[5] / completed, 3)
                                   if completed else 0.0)
        row["max_response_us"] = round(values[6], 3)
        return row

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready document (histograms reduced to percentiles)."""
        return {
            "scenario": self.scenario,
            "totals": {
                "arrivals": self.arrivals,
                "requests": self.requests,
                "completed": self.completed,
                "shed": self.shed,
                "lost": self.lost,
                "lost_reads": self.lost_reads,
                "lost_writes": self.lost_writes,
                "redirected": self.redirected,
                "sync_arrived": self.sync_arrived,
                "sync_completed": self.sync_completed,
                "sync_lost": self.sync_lost,
                "sync_skipped": self.sync_skipped,
                "shed_fraction": round(self.shed_fraction, 6),
                "span_us": round(self.span_us, 3),
                "throughput_rps": round(self.throughput_rps, 3),
            },
            "latency": {
                "response_mean_us": round(self.response.mean, 3),
                "response_p50_us": round(self.response.p50, 3),
                "response_p95_us": round(self.response.p95, 3),
                "response_p99_us": round(self.response.p99, 3),
                "queue_delay_mean_us": round(self.queue_delay.mean, 3),
                "queue_delay_p99_us": round(self.queue_delay.p99, 3),
            },
            "shards": [self._shard_dict(shard) for shard in self.shards],
            "buckets": self.bucket_rows(),
        }

    @staticmethod
    def _shard_dict(shard: Dict[str, Any]) -> Dict[str, Any]:
        out = {key: value for key, value in shard.items()
               if key != "buckets"}
        return out


def _validate(scenario: ClusterScenario, chaos: ChaosSchedule) -> None:
    if scenario.shards < 1:
        raise ValueError("shards must be >= 1")
    if scenario.pattern not in ARRIVAL_PATTERNS:
        raise ValueError(f"unknown arrival pattern {scenario.pattern!r}; "
                         f"known: {', '.join(ARRIVAL_PATTERNS)}")
    if scenario.replicas < 1:
        raise ClusterError("replicas must be >= 1")
    if scenario.replicas > scenario.shards:
        raise ClusterError(
            f"replicas={scenario.replicas} exceeds the fleet of "
            f"{scenario.shards} shard(s)")
    if scenario.aged_shard is not None \
            and not 0 <= scenario.aged_shard < scenario.shards:
        raise ValueError(f"aged_shard={scenario.aged_shard} outside the "
                         f"fleet (0..{scenario.shards - 1})")
    chaos.validate_fleet(scenario.shards)
    # Replication must survive the darkest scripted moment (membership
    # only changes at kill/rejoin instants, so checking those suffices).
    for kill in chaos.kills:
        live = scenario.shards - len(chaos.dead_at(kill.at_us))
        if live < scenario.replicas:
            raise ClusterError(
                f"replicas={scenario.replicas} cannot be placed on the "
                f"{live} shard(s) live at t={kill.at_us:g}us")


def _organic_risk(scenario: ClusterScenario,
                  chaos: ChaosSchedule) -> List[int]:
    """Shards that may retire *organically* mid-run (no scripted kill)."""
    if (scenario.aged_shard is not None and scenario.retire_on_degraded
            and (scenario.aged_fault_rate > 0.0
                 or scenario.aged_reliability_rate > 0.0)
            and scenario.aged_shard not in chaos.killed_shards):
        return [scenario.aged_shard]
    return []


def _stage_plan(scenario: ClusterScenario, chaos: ChaosSchedule,
                ) -> List[Tuple[str, List[_Node]]]:
    """The deterministic stage order: scripted kill groups ascending,
    then the organic-risk group, then the serving group (healthy shards
    plus rejoined incarnations)."""
    plan: List[Tuple[str, List[_Node]]] = []
    for at_us, members in chaos.stages():
        plan.append((f"kill@{at_us:g}us",
                     [(shard, 0) for shard in members]))
    organic = _organic_risk(scenario, chaos)
    if organic:
        plan.append(("organic", [(shard, 0) for shard in organic]))
    killed = set(chaos.killed_shards)
    serving: List[_Node] = [
        (shard, 0) for shard in range(scenario.shards)
        if shard not in killed and shard not in organic]
    serving.extend((rejoin.shard, 1)
                   for rejoin in sorted(chaos.rejoins,
                                        key=lambda spec: spec.shard))
    serving.sort()
    plan.append(("serving", serving))
    return plan


def _shard_task(scenario: ClusterScenario, node: _Node,
                stream: List[Arrival], sync_stream: List[Arrival],
                chaos: ChaosSchedule) -> SweepTask:
    shard_id, incarnation = node
    aged = incarnation == 0 and shard_id == scenario.aged_shard
    if incarnation == 0:
        key = f"cluster:shard={shard_id}"
        fail_at_us = chaos.kill_at(shard_id)
        rejoin_at_us = None
    else:
        key = f"cluster:shard={shard_id}:rejoin"
        fail_at_us = None
        rejoin_at_us = chaos.rejoin_at(shard_id)
    return SweepTask(
        key=key,
        fn=run_shard,
        kwargs={
            "shard_id": shard_id,
            "arrivals": stream,
            "dram_bytes": scenario.dram_bytes,
            "flash_bytes": scenario.flash_bytes,
            "queue_depth": scenario.queue_depth,
            "channels": scenario.channels,
            "planes": scenario.planes,
            "shed_queue": scenario.shed_queue,
            "fail_at_us": fail_at_us,
            "retire_on_degraded": aged and scenario.retire_on_degraded,
            "fault_rate": scenario.aged_fault_rate if aged else 0.0,
            "reliability_rate": (scenario.aged_reliability_rate
                                 if aged else 0.0),
            "bucket_us": scenario.bucket_ms * 1000.0,
            "sample_interval": scenario.sample_interval,
            "seed": scenario.seed,
            "sync_arrivals": sync_stream,
            "rejoin_at_us": rejoin_at_us,
            "incarnation": incarnation,
        })


def _run_stage(scenario: ClusterScenario, stage: str, nodes: List[_Node],
               streams: Dict[_Node, List[Arrival]],
               sync_streams: Dict[_Node, List[Arrival]],
               chaos: ChaosSchedule, workers: int,
               progress: Optional[ProgressCallback],
               ) -> Dict[_Node, Dict[str, Any]]:
    """Fan one stage's nodes out through the parallel runner."""
    if not nodes:
        return {}
    if progress is not None:
        progress({"kind": "stage", "stage": stage,
                  "shards": [shard for shard, _ in nodes]})
    tasks = [_shard_task(scenario, node, streams[node],
                         sync_streams.get(node, []), chaos)
             for node in nodes]
    stage_progress: Optional[Callable[[SweepResult, int, int], None]] = None
    if progress is not None:
        callback = progress

        def _stage_progress(result: SweepResult, done: int,
                            total: int) -> None:
            callback({"kind": "shard", "stage": stage, "key": result.key,
                      "ok": result.ok, "done": done, "total": total})
        stage_progress = _stage_progress
    results = sweep(tasks, workers=workers, progress=stage_progress)
    return {node: result.unwrap()
            for node, result in zip(nodes, results)}


class _Planner:
    """Time-aware routing shared by the plan and failover phases."""

    def __init__(self, scenario: ClusterScenario,
                 chaos: ChaosSchedule) -> None:
        self.scenario = scenario
        self.chaos = chaos
        self.ring = HashRing(range(scenario.shards),
                             vnodes=scenario.vnodes)
        self.organic = frozenset(_organic_risk(scenario, chaos))
        #: Shard ids whose incarnation-0 run has started (or finished) —
        #: their original streams can no longer accept failover traffic.
        self.started: Set[int] = set()

    def node_for(self, shard: int, time_us: float) -> _Node:
        """Which incarnation of ``shard`` serves an arrival at ``time_us``."""
        rejoin_us = self.chaos.rejoin_at(shard)
        if rejoin_us is not None and time_us >= rejoin_us:
            return (shard, 1)
        return (shard, 0)

    def replica_nodes(self, page: int, time_us: float,
                      is_read: bool) -> List[_Node]:
        """The nodes a planned request lands on: the first live replica
        for a read, every live replica for a write."""
        dead = self.chaos.dead_at(time_us)
        targets = self.ring.route_replicas(page, self.scenario.replicas,
                                           exclude=dead)
        chosen = targets[:1] if is_read else targets
        return [self.node_for(shard, time_us) for shard in chosen]

    def failover_node(self, page: int, time_us: float) -> _Node:
        """Where failover traffic (a redirect or a replica retry) at
        ``time_us`` goes: the page's first ring successor that is alive,
        has not already run, and is not flagged as organic risk.  Raises
        :class:`ClusterError` when no such shard exists."""
        exclusion: Set[int] = set(self.chaos.dead_at(time_us))
        exclusion |= self.organic
        for shard in self.started:
            rejoin_us = self.chaos.rejoin_at(shard)
            if rejoin_us is None or time_us < rejoin_us:
                exclusion.add(shard)
        target = self.ring.route(page, exclude=exclusion)
        return self.node_for(target, time_us)


def _plan_streams(planner: _Planner, arrivals: List[Arrival],
                  ) -> Tuple[Dict[_Node, List[Arrival]], int]:
    """Route the traffic plan onto nodes; returns (streams, planned_ops)."""
    chaos = planner.chaos
    streams: Dict[_Node, List[Arrival]] = {
        (shard, 0): [] for shard in range(planner.scenario.shards)}
    for rejoin in chaos.rejoins:
        streams[(rejoin.shard, 1)] = []
    planned_ops = 0
    for arrival in arrivals:
        time_us, _, page, is_read = arrival
        nodes = planner.replica_nodes(page, time_us, is_read)
        planned_ops += len(nodes)
        for node in nodes:
            streams[node].append(arrival)
    return streams, planned_ops


def _plan_sync(planner: _Planner, arrivals: List[Arrival],
               ) -> Dict[_Node, List[Arrival]]:
    """Plan each rejoiner's catch-up: for every distinct page touched
    while it was dead whose replica set would have included it, one
    background write on the rejoined incarnation warming the key back
    in, paired with one background source read on the first live shard
    still holding it.  Minimal-move by construction: only the
    rejoiner's own keys travel."""
    chaos = planner.chaos
    ring = planner.ring
    replicas = planner.scenario.replicas
    sync_streams: Dict[_Node, List[Arrival]] = {}
    for rejoin in sorted(chaos.rejoins, key=lambda spec: spec.shard):
        shard = rejoin.shard
        kill_us = chaos.kill_at(shard)
        assert kill_us is not None  # ChaosSchedule validated the pairing
        moved: Dict[int, None] = {}
        for time_us, _, page, _ in arrivals:
            if not kill_us <= time_us < rejoin.at_us or page in moved:
                continue
            # Would this key have lived on the rejoiner, had it been up?
            as_if_alive = set(chaos.dead_at(time_us))
            as_if_alive.discard(shard)
            if shard in ring.route_replicas(page, replicas,
                                            exclude=as_if_alive):
                moved[page] = None
        dead_at_rejoin = set(chaos.dead_at(rejoin.at_us))
        dead_at_rejoin.add(shard)
        for seq, page in enumerate(moved):
            try:
                source = ring.route(page, exclude=dead_at_rejoin)
            except ClusterError:
                continue  # nobody left to stream from; key stays cold
            sync_streams.setdefault((shard, 1), []).append(
                (rejoin.at_us, seq, page, False))
            source_node = planner.node_for(source, rejoin.at_us)
            sync_streams.setdefault(source_node, []).append(
                (rejoin.at_us, seq, page, True))
    for stream in sync_streams.values():
        stream.sort(key=lambda a: (a[0], a[1]))
    return sync_streams


def _absorb_failover(planner: _Planner, nodes: List[_Node],
                     outcomes: Dict[_Node, Dict[str, Any]],
                     streams: Dict[_Node, List[Arrival]],
                     dirty: Set[_Node]) -> None:
    """Merge one finished stage's failover traffic into the streams of
    nodes still to run.

    Redirects (arrivals a retired shard bounced) reroute to the page's
    next eligible owner.  At R > 1, reads that were in flight when their
    shard was killed are *reclassified*: the data lives on a sibling
    replica, so the loss becomes a redirect and a retry arrival is
    issued at the kill instant on the first eligible replica — which may
    itself be a later cascade victim, in which case the retry bounces
    again when that stage runs.
    """
    replicas = planner.scenario.replicas
    for node in nodes:
        outcome = outcomes[node]
        for arrival in outcome["redirects"]:
            try:
                target = planner.failover_node(arrival[2], arrival[0])
            except ClusterError:
                raise ClusterError(
                    "every shard retired; failover traffic has nowhere "
                    "to go") from None
            streams[target].append(arrival)
            dirty.add(target)
        if replicas <= 1 or not outcome["inflight_reads"]:
            continue
        retired_us = outcome["retired_at_us"]
        for arrival, bucket_index in outcome["inflight_reads"]:
            try:
                target = planner.failover_node(arrival[2], retired_us)
            except ClusterError:
                continue  # no live replica left: the read stays lost
            outcome["lost"] -= 1
            outcome["lost_reads"] -= 1
            outcome["redirected"] += 1
            row = outcome["buckets"][bucket_index]
            row[3] -= 1
            row[4] += 1
            streams[target].append((retired_us, arrival[1], arrival[2],
                                    True))
            dirty.add(target)


def run_cluster(scenario: ClusterScenario, workers: int = 1,
                progress: Optional[ProgressCallback] = None,
                ) -> ClusterResult:
    """Simulate one cluster scenario; identical at any worker count."""
    chaos = scenario.chaos()
    _validate(scenario, chaos)
    arrivals = build_arrivals(scenario.pattern, scenario.rate_rps,
                              scenario.duration_s, scenario.workload,
                              scenario.footprint_pages, scenario.seed)
    planner = _Planner(scenario, chaos)
    streams, planned_ops = _plan_streams(planner, arrivals)
    sync_streams = _plan_sync(planner, arrivals)

    outcomes: Dict[_Node, Dict[str, Any]] = {}
    dirty: Set[_Node] = set()
    for stage, nodes in _stage_plan(scenario, chaos):
        for node in nodes:
            if node in dirty:
                streams[node].sort(key=lambda a: (a[0], a[1]))
                dirty.discard(node)
        outcomes.update(_run_stage(scenario, stage, nodes, streams,
                                   sync_streams, chaos, workers,
                                   progress))
        planner.started.update(shard for shard, incarnation in nodes
                               if incarnation == 0)
        _absorb_failover(planner, nodes, outcomes, streams, dirty)
    if dirty:
        raise RuntimeError(  # pragma: no cover - planner invariant
            f"failover traffic merged into already-run nodes: "
            f"{sorted(dirty)}")
    return _combine(scenario, len(arrivals), planned_ops, outcomes)


def _merge_incarnations(parts: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold one shard's incarnation outcomes into a single summary."""
    merged = dict(parts[0])
    merged.pop("incarnation", None)
    merged["incarnations"] = len(parts)
    for later in parts[1:]:
        for key in _SUMMED_KEYS:
            merged[key] += later[key]
        for key in _LATEST_KEYS:
            merged[key] = later[key]
        merged["span_us"] = max(merged["span_us"], later["span_us"])
        merged["rejoined_at_us"] = later["rejoined_at_us"]
        buckets: Dict[int, List[float]] = {
            index: list(row) for index, row in merged["buckets"].items()}
        for index, row in later["buckets"].items():
            into = buckets.setdefault(index, [0, 0, 0, 0, 0, 0.0, 0.0])
            for position, value in enumerate(row):
                if position == 6:
                    into[position] = max(into[position], value)
                else:
                    into[position] += value
        merged["buckets"] = buckets
        merged["response"].merge(later["response"])
        merged["queue_delay"].merge(later["queue_delay"])
    return merged


def _combine(scenario: ClusterScenario, requests: int, planned_ops: int,
             outcomes: Dict[_Node, Dict[str, Any]]) -> ClusterResult:
    by_shard: Dict[int, List[Dict[str, Any]]] = {}
    for shard, incarnation in sorted(outcomes):
        by_shard.setdefault(shard, []).append(
            outcomes[(shard, incarnation)])
    ordered = [_merge_incarnations(parts)
               for _, parts in sorted(by_shard.items())]
    completed = sum(outcome["completed"] for outcome in ordered)
    shed = sum(outcome["shed"] for outcome in ordered)
    lost = sum(outcome["lost"] for outcome in ordered)
    redirected = sum(outcome["redirected"] for outcome in ordered)
    arrived = sum(outcome["arrivals"] for outcome in ordered)
    if completed + shed + lost != planned_ops \
            or arrived - redirected != planned_ops:
        raise RuntimeError(
            f"cluster lost-request accounting drift: planned "
            f"{planned_ops}, completed {completed} + shed {shed} + "
            f"lost {lost} (arrived {arrived}, redirected {redirected})")
    response = LatencyHistogram("cluster.response_us")
    queue_delay = LatencyHistogram("cluster.queue_delay_us")
    for outcome in ordered:
        response.merge(outcome["response"])
        queue_delay.merge(outcome["queue_delay"])
    span_us = max(outcome["span_us"] for outcome in ordered)
    shards = []
    for outcome in ordered:
        summary = {key: value for key, value in outcome.items()
                   if key not in ("redirects", "inflight_reads",
                                  "response", "queue_delay",
                                  "service_latency", "telemetry")}
        summary["response_p50_us"] = round(outcome["response"].p50, 3)
        summary["response_p95_us"] = round(outcome["response"].p95, 3)
        summary["response_p99_us"] = round(outcome["response"].p99, 3)
        summary["mean_queue_delay_us"] = round(
            outcome["queue_delay"].mean, 3)
        shards.append(summary)
    node_order = [outcomes[node] for node in sorted(outcomes)]
    return ClusterResult(
        scenario=asdict(scenario),
        arrivals=planned_ops,
        completed=completed,
        shed=shed,
        lost=lost,
        redirected=redirected,
        span_us=span_us,
        throughput_rps=(completed / (span_us * 1e-6) if span_us > 0
                        else 0.0),
        response=response,
        queue_delay=queue_delay,
        requests=requests,
        lost_reads=sum(outcome["lost_reads"] for outcome in ordered),
        lost_writes=sum(outcome["lost_writes"] for outcome in ordered),
        sync_arrived=sum(outcome["sync_arrived"] for outcome in ordered),
        sync_completed=sum(outcome["sync_completed"]
                           for outcome in ordered),
        sync_lost=sum(outcome["sync_lost"] for outcome in ordered),
        sync_skipped=sum(outcome["sync_skipped"] for outcome in ordered),
        shards=shards,
        telemetry=merge_telemetry(outcome["telemetry"]
                                  for outcome in node_order),
    )
