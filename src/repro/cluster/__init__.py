"""``repro.cluster`` — a sharded Flash-cache service (DESIGN.md §15).

The paper's headline results are server-level; the ROADMAP's north star
is "heavy traffic from millions of users".  This package scales the
single-node hierarchy out: a consistent-hash front-end routes open-loop
traffic across N simulated Flash-cache shards (one process per shard via
the parallel runner), with queue-depth admission control, replicated
keys (R > 1), degraded-shard failover, survivor cascades, and
repair/re-admission reusing the fault-injection and reliability models.

Layers:

* :mod:`~repro.cluster.arrivals` — open-loop traffic plans (steady,
  diurnal, flash crowd, drain);
* :mod:`~repro.cluster.ring`     — SHA-256 consistent-hash routing with
  replica sets (``route_replicas``);
* :mod:`~repro.cluster.chaos`    — scripted kill/rejoin timelines
  (:class:`ChaosSchedule`);
* :mod:`~repro.cluster.errors`   — the typed :class:`ClusterError`;
* :mod:`~repro.cluster.shard`    — the per-shard open-loop engine with
  shedding, retirement, and background catch-up sync;
* :mod:`~repro.cluster.cluster`  — N-stage failover/repair orchestration
  and aggregation (:func:`run_cluster`);
* :mod:`~repro.cluster.feed`     — deterministic JSONL/CSV telemetry
  feeds;
* :mod:`~repro.cluster.service`  — the asyncio serving shell with live
  progress events.
"""

from .arrivals import ARRIVAL_PATTERNS, build_arrivals
from .chaos import ChaosSchedule, KillSpec, RejoinSpec
from .cluster import ClusterResult, ClusterScenario, run_cluster
from .errors import ClusterError
from .feed import feed_lines, write_feed_csv, write_feed_jsonl
from .ring import HashRing
from .service import ClusterService, serve
from .shard import run_shard

__all__ = [
    "ARRIVAL_PATTERNS",
    "build_arrivals",
    "ChaosSchedule",
    "KillSpec",
    "RejoinSpec",
    "ClusterError",
    "ClusterResult",
    "ClusterScenario",
    "run_cluster",
    "feed_lines",
    "write_feed_csv",
    "write_feed_jsonl",
    "HashRing",
    "ClusterService",
    "serve",
    "run_shard",
]
