"""``repro.cluster`` — a sharded Flash-cache service (DESIGN.md §15).

The paper's headline results are server-level; the ROADMAP's north star
is "heavy traffic from millions of users".  This package scales the
single-node hierarchy out: a consistent-hash front-end routes open-loop
traffic across N simulated Flash-cache shards (one process per shard via
the parallel runner), with queue-depth admission control and
degraded-shard failover reusing the fault-injection and reliability
models.

Layers:

* :mod:`~repro.cluster.arrivals` — open-loop traffic plans (steady,
  diurnal, flash crowd, drain);
* :mod:`~repro.cluster.ring`     — SHA-256 consistent-hash routing;
* :mod:`~repro.cluster.shard`    — the per-shard open-loop engine with
  shedding and retirement;
* :mod:`~repro.cluster.cluster`  — two-stage failover orchestration and
  aggregation (:func:`run_cluster`);
* :mod:`~repro.cluster.feed`     — deterministic JSONL/CSV telemetry
  feeds;
* :mod:`~repro.cluster.service`  — the asyncio serving shell with live
  progress events.
"""

from .arrivals import ARRIVAL_PATTERNS, build_arrivals
from .cluster import ClusterResult, ClusterScenario, run_cluster
from .feed import feed_lines, write_feed_csv, write_feed_jsonl
from .ring import HashRing
from .service import ClusterService, serve
from .shard import run_shard

__all__ = [
    "ARRIVAL_PATTERNS",
    "build_arrivals",
    "ClusterResult",
    "ClusterScenario",
    "run_cluster",
    "feed_lines",
    "write_feed_csv",
    "write_feed_jsonl",
    "HashRing",
    "ClusterService",
    "serve",
    "run_shard",
]
