"""Scripted failure/repair timelines for the cluster orchestrator.

A :class:`ChaosSchedule` is the declarative form of everything the
membership service "knows in advance" about a run: which shards die at
which simulated instants (:class:`KillSpec`), and which repaired shards
rejoin the ring when (:class:`RejoinSpec`).  Organic retirements — an
aged shard whose fault ladder trips graceful degradation — are *not* in
the schedule; they are discovered when the shard runs and cascade
through the same staged redirect machinery.

The schedule answers the two questions the planner asks:

* :meth:`ChaosSchedule.dead_at` — which shards are out of the ring at
  instant ``t`` (killed, and not yet rejoined);
* :meth:`ChaosSchedule.stages` — the deterministic stage order: kills
  grouped by identical kill instant, ascending, so a same-microsecond
  double kill runs as one stage and a later kill (a survivor cascade)
  runs after the redirects it will absorb have been merged in.

:meth:`ChaosSchedule.sample` draws a random kill→cascade→repair
timeline from a seed via :func:`repro.parallel.derive_seed`, so chaos
experiments are reproducible streams, never ad-hoc randomness
(simlint SIM002).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..parallel import derive_seed
from .errors import ClusterError

__all__ = ["KillSpec", "RejoinSpec", "ChaosSchedule"]


@dataclass(frozen=True)
class KillSpec:
    """One scripted shard death: in-flight work is lost or retried
    (replicas permitting), later arrivals route around the corpse."""

    shard: int
    at_us: float


@dataclass(frozen=True)
class RejoinSpec:
    """One repaired shard re-admission: the shard re-enters the ring at
    ``at_us`` with a cold cache and a catch-up sync of the keys that
    moved away while it was down."""

    shard: int
    at_us: float


@dataclass(frozen=True)
class ChaosSchedule:
    """A validated, immutable failure/repair timeline."""

    kills: Tuple[KillSpec, ...] = ()
    rejoins: Tuple[RejoinSpec, ...] = ()

    def __post_init__(self) -> None:
        killed = [kill.shard for kill in self.kills]
        if len(set(killed)) != len(killed):
            raise ClusterError("duplicate kill for one shard; a shard "
                               "dies at most once per run")
        if any(kill.at_us < 0.0 for kill in self.kills):
            raise ClusterError("kill instants must be >= 0")
        kill_at = {kill.shard: kill.at_us for kill in self.kills}
        rejoined = [rejoin.shard for rejoin in self.rejoins]
        if len(set(rejoined)) != len(rejoined):
            raise ClusterError("duplicate rejoin for one shard")
        for rejoin in self.rejoins:
            if rejoin.shard not in kill_at:
                raise ClusterError(
                    f"shard {rejoin.shard} rejoins but was never "
                    f"killed; repair needs a preceding kill")
            if rejoin.at_us <= kill_at[rejoin.shard]:
                raise ClusterError(
                    f"shard {rejoin.shard} rejoins at {rejoin.at_us} "
                    f"<= its kill at {kill_at[rejoin.shard]}; repair "
                    f"takes time")

    # -- queries -------------------------------------------------------------

    @property
    def killed_shards(self) -> Tuple[int, ...]:
        return tuple(sorted(kill.shard for kill in self.kills))

    def kill_at(self, shard: int) -> Optional[float]:
        for kill in self.kills:
            if kill.shard == shard:
                return kill.at_us
        return None

    def rejoin_at(self, shard: int) -> Optional[float]:
        for rejoin in self.rejoins:
            if rejoin.shard == shard:
                return rejoin.at_us
        return None

    def dead_at(self, time_us: float) -> FrozenSet[int]:
        """Shards out of the ring at ``time_us`` per the script alone
        (organic retirements are a run-time discovery, not a plan)."""
        dead = set()
        for kill in self.kills:
            if time_us < kill.at_us:
                continue
            rejoin_us = self.rejoin_at(kill.shard)
            if rejoin_us is None or time_us < rejoin_us:
                dead.add(kill.shard)
        return frozenset(dead)

    def stages(self) -> List[Tuple[float, Tuple[int, ...]]]:
        """Scripted kill stages: ``(kill_at_us, shards)`` ascending.

        Shards killed at the same instant share a stage (their redirect
        streams merge together); a later kill is a *survivor cascade* —
        it runs after earlier stages so the redirects it absorbed are
        already in its stream when it, too, dies.
        """
        groups: Dict[float, List[int]] = {}
        for kill in self.kills:
            groups.setdefault(kill.at_us, []).append(kill.shard)
        return [(at_us, tuple(sorted(groups[at_us])))
                for at_us in sorted(groups)]

    def validate_fleet(self, shards: int) -> None:
        """Check every scripted shard id fits the fleet."""
        for label, members in (("kill", self.killed_shards),
                               ("rejoin", tuple(r.shard
                                                for r in self.rejoins))):
            for shard in members:
                if not 0 <= shard < shards:
                    raise ClusterError(
                        f"{label} names shard {shard} outside the "
                        f"fleet (0..{shards - 1})")
        if len(self.kills) >= shards:
            raise ClusterError(
                f"schedule kills {len(self.kills)} of {shards} shards; "
                f"at least one must survive to absorb failover traffic")

    # -- construction --------------------------------------------------------

    @classmethod
    def sample(cls, shards: int, duration_s: float, kills: int = 1,
               repair: bool = False, seed: int = 0) -> "ChaosSchedule":
        """Draw a reproducible kill→cascade→repair timeline.

        ``kills`` victims are chosen without replacement and die at
        instants spread through the middle of the run (ascending, so
        each later kill is a survivor cascade); with ``repair`` the
        first victim rejoins near the end.  Identical arguments give
        an identical schedule — the RNG is seeded through
        :func:`~repro.parallel.derive_seed`.
        """
        if kills < 1:
            raise ClusterError("sample needs kills >= 1")
        if kills >= shards:
            raise ClusterError("sample must leave a survivor")
        rng = Random(derive_seed(seed, f"cluster:chaos:{shards}:{kills}"))
        victims = rng.sample(range(shards), kills)
        duration_us = duration_s * 1e6
        # Kill instants in [15%, 70%] of the run, ascending.
        instants = sorted(rng.uniform(0.15 * duration_us,
                                      0.70 * duration_us)
                          for _ in range(kills))
        kill_specs = tuple(KillSpec(shard, at_us)
                           for shard, at_us in zip(victims, instants))
        rejoin_specs: Tuple[RejoinSpec, ...] = ()
        if repair:
            rejoin_specs = (RejoinSpec(
                victims[0],
                rng.uniform(0.8 * duration_us, 0.9 * duration_us)),)
        return cls(kills=kill_specs, rejoins=rejoin_specs)

    @classmethod
    def from_scenario(cls, kill_shard: Optional[int],
                      kill_at_us: Optional[float],
                      cascade: Sequence[Tuple[int, float]],
                      rejoin_at_us: Optional[float]) -> "ChaosSchedule":
        """Build the schedule from :class:`ClusterScenario` primitives."""
        kill_specs: List[KillSpec] = []
        if kill_shard is not None:
            if kill_at_us is None:
                raise ClusterError("kill_shard without a kill instant")
            kill_specs.append(KillSpec(kill_shard, kill_at_us))
        for shard, at_us in cascade:
            kill_specs.append(KillSpec(shard, at_us))
        rejoin_specs: List[RejoinSpec] = []
        if rejoin_at_us is not None:
            if kill_shard is None:
                raise ClusterError("rejoin_at_us needs kill_shard: only "
                                   "a killed shard can be repaired")
            rejoin_specs.append(RejoinSpec(kill_shard, rejoin_at_us))
        return cls(kills=tuple(kill_specs), rejoins=tuple(rejoin_specs))
