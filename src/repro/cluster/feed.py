"""Deterministic JSON/CSV telemetry feed for cluster runs.

The feed is the cluster's figure-grade artifact: a time-bucketed view of
offered load, completions, shedding, losses, and response latency, per
shard and cluster-wide, plus each shard's :class:`TraceSampler` health
series (miss rate, live capacity, wear) harvested from its telemetry
handle.  It is part of the determinism contract — byte-identical for a
fixed seed at any worker layout — so every row is emitted in a canonical
order and all writes go through :mod:`repro.atomicio`.

Formats:

* **JSONL** — one ``{"type": "meta"}`` header line (scenario + totals),
  one ``{"type": "sample"}`` line per (bucket, shard) row with the
  cluster row first in each bucket, then one ``{"type": "series"}`` line
  per shard health series;
* **CSV** — the sample rows alone, flat, for spreadsheet/plot use.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List

from ..atomicio import atomic_write_text
from .cluster import ClusterResult

__all__ = ["feed_lines", "write_feed_jsonl", "write_feed_csv"]

#: Column order of the CSV feed (and of every sample row's JSON keys).
SAMPLE_COLUMNS = ("t_ms", "shard", "arrivals", "completed", "shed",
                  "lost", "redirected", "mean_response_us",
                  "max_response_us")


def _series_rows(result: ClusterResult) -> List[Dict[str, Any]]:
    telemetry = result.telemetry
    if telemetry is None:
        return []
    return [{"type": "series", "name": name,
             "xs": list(series.xs), "ys": list(series.ys)}
            for name, series in sorted(telemetry.timeseries.items())]


def feed_lines(result: ClusterResult) -> List[str]:
    """The canonical JSONL feed, one JSON document per line."""
    document = result.as_dict()
    meta = {"type": "meta", "scenario": document["scenario"],
            "totals": document["totals"], "latency": document["latency"],
            "shards": document["shards"]}
    lines = [json.dumps(meta, sort_keys=True)]
    for row in result.bucket_rows():
        lines.append(json.dumps({"type": "sample", **row},
                                sort_keys=True))
    for row in _series_rows(result):
        lines.append(json.dumps(row, sort_keys=True))
    return lines


def write_feed_jsonl(result: ClusterResult, path: str) -> None:
    atomic_write_text(path, "\n".join(feed_lines(result)) + "\n")


def write_feed_csv(result: ClusterResult, path: str) -> None:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(SAMPLE_COLUMNS)
    for row in result.bucket_rows():
        writer.writerow([row[column] for column in SAMPLE_COLUMNS])
    atomic_write_text(path, buffer.getvalue())
