"""Whole-program call graph over the :class:`SymbolTable`.

Edges connect function/method symbols; each records its call site and
whether the call is *deferred* (written inside a lambda or nested
function, so it runs later — or never — rather than as part of the
caller's own control flow).  The async-blocking rule (SIM011) must not
follow deferred edges: ``loop.run_in_executor(None, lambda:
run_cluster(...))`` is precisely how blocking work is kept *off* the
event loop.

Resolution strategy, in order of confidence:

1. bare names — local defs and import aliases (re-exports included);
2. dotted names through the import table (``module.attr(...)``);
3. ``self.method()`` / ``cls.method()`` / ``super().method()`` against
   the enclosing class, walking project base classes;
4. typed dispatch — parameter annotations, ``x: T`` / ``x = T(...)``
   locals, annotated dataclass fields, and ``self.attr`` types
   inferred from ``__init__`` assignments (``X | Y`` unions fan out to
   every named class);
5. unique-name fallback — an attribute call whose method name exactly
   one project class defines binds to it;
6. anything left on a receiver of unknown type whose name looks like a
   builtin-container method (``append``, ``items``, ...) is external.

Calls that match several project methods and nothing pins the receiver
type are *ambiguous*: they are kept out of the taint analyses (a wrong
edge would invent findings) and counted against the resolution rate the
meta-test enforces.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import ModuleContext, Project
from .symbols import Symbol, SymbolTable

__all__ = ["Edge", "CallGraph"]

#: Receiver-less method names that belong to builtin containers, files,
#: futures, and stdlib objects; with an unknown receiver type these are
#: classified external rather than guessed at.
_BUILTIN_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "index",
    "count", "sort", "reverse", "copy", "add", "discard", "update",
    "union", "intersection", "difference", "symmetric_difference",
    "keys", "values", "items", "get", "setdefault", "popitem",
    "split", "rsplit", "join", "strip", "lstrip", "rstrip", "replace",
    "startswith", "endswith", "format", "encode", "decode", "lower",
    "upper", "title", "zfill", "ljust", "rjust", "splitlines", "center",
    "read", "readline", "readlines", "write", "writelines", "close",
    "flush", "seek", "tell", "fileno", "most_common", "elements",
    "put", "put_nowait", "get_nowait", "empty", "qsize", "task_done",
    "cancel", "cancelled", "done", "result", "exception", "set_result",
    "add_done_callback", "exists", "mkdir", "rmdir", "touch", "rename",
    "rglob", "glob", "iterdir", "resolve", "relative_to", "with_suffix",
    "with_name", "as_posix", "read_text", "read_bytes", "write_text",
    "write_bytes", "unlink", "is_dir", "is_file", "samefile", "open",
    "match", "search", "findall", "finditer", "sub", "fullmatch",
    "group", "groups", "groupdict", "start", "end", "span",
    "hexdigest", "digest", "to_bytes", "from_bytes", "bit_length",
    "isoformat", "total_seconds", "timestamp", "strftime", "strip_dirs",
    "sort_stats", "print_stats", "dump_stats", "writerow", "writerows",
    "getvalue", "getbuffer", "isdigit", "isalpha", "isidentifier",
    "set_start_method", "get_context", "cpu_count", "terminate",
    "kill", "wait", "communicate", "poll", "send_signal", "as_integer_ratio",
    # argparse
    "add_argument", "add_parser", "add_subparsers", "parse_args",
    "parse_known_args", "set_defaults", "add_argument_group",
    "add_mutually_exclusive_group", "error",
    # random.Random
    "random", "randrange", "randint", "getrandbits", "gauss",
    "expovariate", "uniform", "shuffle", "sample", "choice", "choices",
    "seed", "normalvariate", "lognormvariate", "betavariate",
    "triangular", "vonmisesvariate", "paretovariate", "weibullvariate",
    # deque / OrderedDict
    "popleft", "appendleft", "extendleft", "rotate", "move_to_end",
    # statistics.NormalDist
    "cdf", "inv_cdf", "pdf", "quantiles",
    # str extras
    "removesuffix", "removeprefix", "rfind", "rindex", "find",
    "partition", "rpartition", "casefold", "capitalize", "swapcase",
    "expandtabs", "translate", "maketrans",
    # concurrent.futures / asyncio loops / profilers / files
    "submit", "shutdown", "run_in_executor", "call_soon",
    "call_soon_threadsafe", "call_later", "call_at", "create_task",
    "run_until_complete", "run_forever", "is_running", "is_closed",
    "stop", "enable", "disable", "create_stats", "runcall",
    "truncate", "sum",
})

_BUILTIN_NAMES = frozenset(dir(builtins))

#: Sentinel "class" for receivers known to be stdlib/builtin values
#: (file handles, set literals, ``io.StringIO`` annotations).  It never
#: matches a project method, so dispatch on it lands in the external
#: bucket instead of guessing by name.
_EXTERNAL = ("<external>",)


@dataclass(frozen=True)
class Edge:
    """One call site linking two project symbols."""

    caller: str          # qualname of the enclosing symbol
    callee: str          # qualname of the resolved target
    path: str            # caller's file
    line: int
    col: int
    kind: str            # "direct"|"self"|"typed"|"unique"|"ctor"|"ambiguous"
    deferred: bool = False

    @property
    def confident(self) -> bool:
        return self.kind != "ambiguous"

    def as_dict(self) -> Dict[str, object]:
        return {"caller": self.caller, "callee": self.callee,
                "path": self.path, "line": self.line, "kind": self.kind,
                "deferred": self.deferred}


@dataclass
class CallGraph:
    """Edges plus resolution accounting for a whole project."""

    symbols: SymbolTable
    edges: List[Edge] = field(default_factory=list)
    #: caller qualname -> outgoing edges, call-site order.
    out: Dict[str, List[Edge]] = field(default_factory=dict)
    #: resolution accounting: resolved / external / dynamic /
    #: ambiguous / unresolved call sites.
    stats: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def build(cls, project: Project, symbols: SymbolTable) -> "CallGraph":
        graph = cls(symbols=symbols)
        for bucket in ("resolved", "external", "dynamic", "ambiguous",
                       "unresolved"):
            graph.stats[bucket] = 0
        inference = _TypeInference(symbols)
        for symbol in sorted(symbols.functions.values(),
                             key=lambda s: s.qualname):
            graph._scan_function(symbol, inference)
        for edge in graph.edges:
            graph.out.setdefault(edge.caller, []).append(edge)
        return graph

    @property
    def resolution_rate(self) -> float:
        """Resolved fraction of the call sites we were expected to bind.

        External and dynamic sites (stdlib, builtins, callable-valued
        parameters) are out of scope by construction; ambiguous and
        unresolved ones are misses.
        """
        hit = self.stats["resolved"]
        miss = self.stats["ambiguous"] + self.stats["unresolved"]
        return hit / (hit + miss) if hit + miss else 1.0

    def callees(self, qualname: str, *, include_deferred: bool = True,
                confident_only: bool = True) -> Iterator[Edge]:
        for edge in self.out.get(qualname, ()):
            if not include_deferred and edge.deferred:
                continue
            if confident_only and not edge.confident:
                continue
            yield edge

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "functions": sorted(self.symbols.functions),
            "classes": sorted(self.symbols.classes),
            "edges": [e.as_dict() for e in self.edges],
            "stats": dict(sorted(self.stats.items())),
            "resolution_rate": round(self.resolution_rate, 4),
        }

    # -- construction ------------------------------------------------------

    def _scan_function(self, symbol: Symbol,
                       inference: "_TypeInference") -> None:
        env = inference.local_env(symbol)
        for call, deferred in _iter_calls(symbol.node):
            edges, bucket = self._resolve_call(symbol, call, env, inference)
            self.stats[bucket] += 1
            for callee, kind in edges:
                self.edges.append(Edge(
                    caller=symbol.qualname, callee=callee,
                    path=symbol.path, line=call.lineno,
                    col=call.col_offset, kind=kind, deferred=deferred))

    def _resolve_call(self, symbol: Symbol, call: ast.Call,
                      env: Dict[str, Tuple[str, ...]],
                      inference: "_TypeInference",
                      ) -> Tuple[List[Tuple[str, str]], str]:
        """-> ([(callee qualname, edge kind), ...], stats bucket)."""
        func = call.func
        table = self.symbols
        ctx = symbol.ctx
        if isinstance(func, ast.Name):
            if func.id in env:
                return [], "dynamic"
            target = table.resolve_local(ctx, func.id)
            if target is not None:
                return self._edges_for(target, "direct"), "resolved"
            alias = ctx.imports.resolve(func.id)
            if alias is not None or func.id in _BUILTIN_NAMES:
                return [], "external"
            return [], "unresolved"
        if isinstance(func, ast.Attribute):
            dotted = _dotted_name(func, ctx)
            if dotted is not None:
                target = table.resolve_qualname(dotted)
                if target is not None:
                    return self._edges_for(target, "direct"), "resolved"
                return [], "external"
            return self._resolve_method(symbol, func, env, inference)
        # Calls of calls, subscripts, lambdas called inline, ...
        return [], "dynamic"

    def _resolve_method(self, symbol: Symbol, func: ast.Attribute,
                        env: Dict[str, Tuple[str, ...]],
                        inference: "_TypeInference",
                        ) -> Tuple[List[Tuple[str, str]], str]:
        table = self.symbols
        base = func.value
        owner = table.class_of(symbol)
        # self.method() / cls.method() / super().method()
        if isinstance(base, ast.Name) and base.id in ("self", "cls") \
                and owner is not None:
            found = table.method_on(owner.qualname, func.attr)
            if found is not None:
                return [(found.qualname, "self")], "resolved"
            if func.attr in inference.attr_names(owner.qualname):
                # A stored callable (self.cb = ...; self.cb()), not a
                # method: the target is whatever got assigned at runtime.
                return [], "dynamic"
        if isinstance(base, ast.Call) and isinstance(base.func, ast.Name) \
                and base.func.id == "super" and owner is not None:
            for base_qual in table.bases.get(owner.qualname, []):
                found = table.method_on(base_qual, func.attr)
                if found is not None:
                    return [(found.qualname, "self")], "resolved"
            return [], "external"
        # Typed dispatch: receiver with a known class.
        candidates = self._receiver_types(symbol, base, env, inference)
        if candidates:
            edges: List[Tuple[str, str]] = []
            for class_qual in candidates:
                found = table.method_on(class_qual, func.attr)
                if found is not None:
                    edges.append((found.qualname, "typed"))
            if edges:
                return edges, "resolved"
            return [], "external"  # typed receiver, inherited/builtin attr
        # Unknown receiver: unique project method name, else builtin.
        named = table.methods_by_name.get(func.attr, [])
        if len(named) == 1:
            return [(named[0].qualname, "unique")], "resolved"
        if len(named) > 1:
            return [(s.qualname, "ambiguous") for s in named], "ambiguous"
        if func.attr in _BUILTIN_METHODS or func.attr.startswith("__"):
            return [], "external"
        return [], "unresolved"

    def _receiver_types(self, symbol: Symbol, base: ast.expr,
                        env: Dict[str, Tuple[str, ...]],
                        inference: "_TypeInference") -> Tuple[str, ...]:
        if isinstance(base, ast.Name):
            if base.id in ("self", "cls"):
                owner = self.symbols.class_of(symbol)
                return (owner.qualname,) if owner is not None else ()
            return env.get(base.id, ())
        if isinstance(base, ast.Call):
            # Chained construction: ``Simulator(config).run()``.
            return inference._value_classes(base, symbol.ctx)
        if isinstance(base, ast.Attribute):
            inner = self._receiver_types(symbol, base.value, env,
                                         inference)
            merged: List[str] = []
            for class_qual in inner:
                merged.extend(inference.attr_types(class_qual).get(
                    base.attr, ()))
            return tuple(dict.fromkeys(merged))
        return ()

    def _edges_for(self, target: Symbol,
                   kind: str) -> List[Tuple[str, str]]:
        if target.kind == "class":
            init = self.symbols.method_on(target.qualname, "__init__")
            if init is not None:
                return [(init.qualname, "ctor")]
            return [(target.qualname, "ctor")]
        return [(target.qualname, kind)]


def _iter_calls(node: ast.AST) -> Iterator[Tuple[ast.Call, bool]]:
    """Every Call in a function body, with its deferred flag.

    Descends into lambdas and nested defs (their sites belong to the
    enclosing symbol, marked deferred) but not into the function's own
    decorator list, which runs at import time.
    """

    def walk(current: ast.AST, deferred: bool) -> Iterator[
            Tuple[ast.Call, bool]]:
        for child in ast.iter_child_nodes(current):
            child_deferred = deferred or isinstance(
                child, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef))
            if isinstance(child, ast.Call):
                yield child, deferred
            yield from walk(child, child_deferred)

    body = getattr(node, "body", [])
    for stmt in body if isinstance(body, list) else [body]:
        yield from walk(stmt, False)
        if isinstance(stmt, ast.Call):
            yield stmt, False


def _target_names(target: ast.expr) -> Iterator[str]:
    """Plain names bound by an assignment/for/with target."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def _dotted_name(node: ast.expr, ctx: ModuleContext) -> Optional[str]:
    """``a.b.c`` resolved through the import table, else None."""
    chain: List[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        chain.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    root = ctx.imports.resolve(cursor.id)
    if root is None:
        return None
    return ".".join([root] + list(reversed(chain)))


class _TypeInference:
    """Annotation-driven nominal types, just deep enough for dispatch."""

    def __init__(self, symbols: SymbolTable) -> None:
        self.symbols = symbols
        self._attr_cache: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        self._name_cache: Dict[str, Set[str]] = {}

    # -- public ------------------------------------------------------------

    def local_env(self, symbol: Symbol) -> Dict[str, Tuple[str, ...]]:
        """name -> candidate class qualnames for params and locals."""
        env: Dict[str, Tuple[str, ...]] = {}
        node = symbol.node
        args = getattr(node, "args", None)
        if args is not None:
            params = (list(args.posonlyargs) + list(args.args)
                      + list(args.kwonlyargs))
            for extra in (args.vararg, args.kwarg):
                if extra is not None:
                    params.append(extra)
            for param in params:
                env[param.arg] = self._annotation_classes(
                    param.annotation, symbol.ctx) \
                    if param.annotation else ()
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                env[stmt.target.id] = self._annotation_classes(
                    stmt.annotation, symbol.ctx)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                inferred = self._value_classes(stmt.value, symbol.ctx)
                env[stmt.targets[0].id] = inferred
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and stmt is not node:
                # Calls to a nested def resolve lexically, not through
                # the graph; its own sites are scanned as deferred.
                env.setdefault(stmt.name, ())
            elif isinstance(stmt, ast.Lambda):
                for param in stmt.args.args:
                    env.setdefault(param.arg, ())
            elif isinstance(stmt, ast.For):
                for name in _target_names(stmt.target):
                    env.setdefault(name, ())
            elif isinstance(stmt, ast.withitem):
                bound = self._value_classes(stmt.context_expr, symbol.ctx)
                if stmt.optional_vars is not None:
                    for name in _target_names(stmt.optional_vars):
                        env.setdefault(name, bound)
            elif isinstance(stmt, ast.comprehension):
                for name in _target_names(stmt.target):
                    env.setdefault(name, ())
        return env

    def attr_types(self, class_qual: str) -> Dict[str, Tuple[str, ...]]:
        """attr name -> candidate classes, from fields and __init__."""
        cached = self._attr_cache.get(class_qual)
        if cached is not None:
            return cached
        result: Dict[str, Tuple[str, ...]] = {}
        self._attr_cache[class_qual] = result
        symbol = self.symbols.classes.get(class_qual)
        if symbol is None:
            return result
        node = symbol.node
        assert isinstance(node, ast.ClassDef)
        for stmt in node.body:
            # Dataclass fields / annotated class attributes.
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                result[stmt.target.id] = self._annotation_classes(
                    stmt.annotation, symbol.ctx)
        for method in self.symbols.methods.get(class_qual, {}).values():
            env = self.local_env(method)
            for stmt in ast.walk(method.node):
                target = None
                value_classes: Tuple[str, ...] = ()
                if isinstance(stmt, ast.AnnAssign):
                    target = stmt.target
                    value_classes = self._annotation_classes(
                        stmt.annotation, symbol.ctx)
                elif isinstance(stmt, ast.Assign) \
                        and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    value = stmt.value
                    if isinstance(value, ast.Name):
                        value_classes = env.get(value.id, ())
                    else:
                        value_classes = self._value_classes(
                            value, symbol.ctx)
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and value_classes
                        and not result.get(target.attr)):
                    result[target.attr] = value_classes
        for base_qual in self.symbols.bases.get(class_qual, []):
            for attr, classes in self.attr_types(base_qual).items():
                result.setdefault(attr, classes)
        return result

    def attr_names(self, class_qual: str) -> Set[str]:
        """Every instance attribute the class ever assigns on self."""
        cached = self._name_cache.get(class_qual)
        if cached is not None:
            return cached
        names: Set[str] = set()
        self._name_cache[class_qual] = names
        symbol = self.symbols.classes.get(class_qual)
        if symbol is None:
            return names
        assert isinstance(symbol.node, ast.ClassDef)
        for stmt in symbol.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                names.add(stmt.target.id)
        for method in self.symbols.methods.get(class_qual, {}).values():
            for stmt in ast.walk(method.node):
                targets: List[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    targets = list(stmt.targets)
                elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                    targets = [stmt.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        names.add(target.attr)
        for base_qual in self.symbols.bases.get(class_qual, []):
            names.update(self.attr_names(base_qual))
        return names

    # -- internals ---------------------------------------------------------

    def _value_classes(self, value: ast.expr,
                       ctx: ModuleContext) -> Tuple[str, ...]:
        """Classes a right-hand side constructs or returns.

        Builtin container literals and calls into the stdlib yield the
        ``<external>`` sentinel: the receiver type is *known*, it just
        is not a project class, so method dispatch on it must not fall
        back to name matching.
        """
        if isinstance(value, (ast.Set, ast.SetComp, ast.Dict,
                              ast.DictComp, ast.List, ast.ListComp,
                              ast.JoinedStr)):
            return _EXTERNAL
        if isinstance(value, ast.Constant):
            return _EXTERNAL if value.value is not None else ()
        if not isinstance(value, ast.Call):
            return ()
        target = self.symbols.resolve_expr(ctx, value.func)
        if target is None:
            root = value.func
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and (
                    ctx.imports.resolve(root.id) is not None
                    or root.id in _BUILTIN_NAMES):
                return _EXTERNAL
            return ()
        if target.kind == "class":
            return (target.qualname,)
        returns = getattr(target.node, "returns", None)
        if returns is not None:
            return self._annotation_classes(returns, target.ctx)
        return ()

    def _annotation_classes(self, annotation: Optional[ast.expr],
                            ctx: ModuleContext) -> Tuple[str, ...]:
        if annotation is None:
            return ()
        if isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, str):
            try:
                annotation = ast.parse(annotation.value,
                                       mode="eval").body
            except SyntaxError:
                return ()
        if isinstance(annotation, ast.BinOp) and isinstance(
                annotation.op, ast.BitOr):
            return (self._annotation_classes(annotation.left, ctx)
                    + self._annotation_classes(annotation.right, ctx))
        if isinstance(annotation, ast.Subscript):
            # Optional/Union unwrap; any other subscripted annotation
            # (List[T], Dict[K, V], IO[str], ...) types the receiver
            # itself as a stdlib container, whatever the elements are.
            head = annotation.value
            head_name = head.id if isinstance(head, ast.Name) else (
                head.attr if isinstance(head, ast.Attribute) else "")
            if head_name == "Optional":
                return self._annotation_classes(annotation.slice, ctx)
            if head_name == "Union":
                arms = annotation.slice
                elts = arms.elts if isinstance(arms, ast.Tuple) else [arms]
                merged: Tuple[str, ...] = ()
                for elt in elts:
                    merged += self._annotation_classes(elt, ctx)
                return merged
            return _EXTERNAL
        if isinstance(annotation, (ast.Name, ast.Attribute)):
            target = self.symbols.resolve_expr(ctx, annotation)
            if target is not None and target.kind == "class":
                return (target.qualname,)
            root = annotation
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and (
                    ctx.imports.resolve(root.id) is not None
                    or root.id in _BUILTIN_NAMES):
                # io.StringIO, typing.TextIO, str, ... a known
                # non-project type.
                return _EXTERNAL
        return ()
