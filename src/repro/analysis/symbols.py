"""Project-wide symbol table: the ground layer of simlint v2.

The file-local rule battery (SIM001..SIM010) sees one module at a time;
the whole-program analyses (DESIGN.md section 16) need to answer "what
does this name denote *anywhere in the tree*?" first.  This module
collects every top-level function, class, and method of a lint run into
:class:`SymbolTable`, keyed by dotted qualname
(``repro.sim.events.EventLoop.post``), and resolves references through
import aliases — including re-exports through package ``__init__``
modules (``from repro.parallel import derive_seed`` lands on
``repro.parallel.runner.derive_seed``).

Nested functions and lambdas are deliberately *not* symbols: they only
run when their enclosing function does, so the call graph attributes
their call sites to the enclosing symbol (flagged as deferred edges).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .engine import ModuleContext, Project

__all__ = ["Symbol", "SymbolTable"]


@dataclass
class Symbol:
    """One named definition somewhere in the project."""

    qualname: str                  # repro.sim.events.EventLoop.post
    module: str                    # repro.sim.events
    name: str                      # post
    kind: str                      # "function" | "method" | "class"
    ctx: ModuleContext
    node: ast.AST                  # the def/class node
    class_name: Optional[str] = None   # owning class, methods only
    is_async: bool = False

    @property
    def path(self) -> str:
        return self.ctx.relpath

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclass
class SymbolTable:
    """Every function/class/method of a :class:`Project`, resolvable."""

    #: qualname -> symbol, functions and methods together.
    functions: Dict[str, Symbol] = field(default_factory=dict)
    #: qualname -> class symbol.
    classes: Dict[str, Symbol] = field(default_factory=dict)
    #: class qualname -> {method name -> symbol}.
    methods: Dict[str, Dict[str, Symbol]] = field(default_factory=dict)
    #: class qualname -> base class qualnames (project classes only).
    bases: Dict[str, List[str]] = field(default_factory=dict)
    #: bare method name -> every project method with that name.
    methods_by_name: Dict[str, List[Symbol]] = field(default_factory=dict)
    #: bare class name -> every project class with that name.
    classes_by_name: Dict[str, List[Symbol]] = field(default_factory=dict)
    #: module name -> its parsed context (for re-export chasing).
    module_ctx: Dict[str, ModuleContext] = field(default_factory=dict)

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, project: Project) -> "SymbolTable":
        table = cls()
        for ctx in project.modules:
            table.module_ctx.setdefault(ctx.module, ctx)
            for stmt in ctx.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    table._add_function(ctx, stmt)
                elif isinstance(stmt, ast.ClassDef):
                    table._add_class(ctx, stmt)
        table._link_bases()
        return table

    def _add_function(self, ctx: ModuleContext,
                      node: ast.AST) -> None:
        qualname = f"{ctx.module}.{node.name}"  # type: ignore[attr-defined]
        self.functions.setdefault(qualname, Symbol(
            qualname=qualname, module=ctx.module,
            name=node.name, kind="function",  # type: ignore[attr-defined]
            ctx=ctx, node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef)))

    def _add_class(self, ctx: ModuleContext, node: ast.ClassDef) -> None:
        qualname = f"{ctx.module}.{node.name}"
        symbol = Symbol(qualname=qualname, module=ctx.module,
                        name=node.name, kind="class", ctx=ctx, node=node)
        self.classes.setdefault(qualname, symbol)
        self.classes_by_name.setdefault(node.name, []).append(symbol)
        table = self.methods.setdefault(qualname, {})
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            method_qual = f"{qualname}.{stmt.name}"
            method = Symbol(
                qualname=method_qual, module=ctx.module, name=stmt.name,
                kind="method", ctx=ctx, node=stmt, class_name=node.name,
                is_async=isinstance(stmt, ast.AsyncFunctionDef))
            self.functions.setdefault(method_qual, method)
            table.setdefault(stmt.name, method)
            self.methods_by_name.setdefault(stmt.name, []).append(method)

    def _link_bases(self) -> None:
        for qualname, symbol in self.classes.items():
            node = symbol.node
            assert isinstance(node, ast.ClassDef)
            resolved: List[str] = []
            for base in node.bases:
                base_symbol = self.resolve_expr(symbol.ctx, base)
                if base_symbol is not None and base_symbol.kind == "class":
                    resolved.append(base_symbol.qualname)
            self.bases[qualname] = resolved

    # -- resolution --------------------------------------------------------

    def resolve_local(self, ctx: ModuleContext,
                      name: str) -> Optional[Symbol]:
        """A bare name in *ctx*: local def, or import alias."""
        direct = (self.functions.get(f"{ctx.module}.{name}")
                  or self.classes.get(f"{ctx.module}.{name}"))
        if direct is not None:
            return direct
        target = ctx.imports.resolve(name)
        if target is not None:
            return self.resolve_qualname(target)
        return None

    def resolve_qualname(self, qualname: str,
                         _seen: Tuple[str, ...] = ()) -> Optional[Symbol]:
        """A dotted name, chasing re-exports through ``__init__`` tables."""
        if qualname in _seen or len(_seen) > 8:
            return None
        found = self.functions.get(qualname) or self.classes.get(qualname)
        if found is not None:
            return found
        head, _, name = qualname.rpartition(".")
        if not head:
            return None
        seen = _seen + (qualname,)
        # ``repro.parallel.derive_seed`` where repro.parallel re-exports.
        ctx = self.module_ctx.get(head)
        if ctx is not None:
            target = ctx.imports.resolve(name)
            return self.resolve_qualname(target, seen) if target else None
        # ``module.Class.method`` where Class itself needs resolution.
        owner = self.resolve_qualname(head, seen)
        if owner is not None and owner.kind == "class":
            return self.method_on(owner.qualname, name)
        return None

    def resolve_expr(self, ctx: ModuleContext,
                     node: ast.expr) -> Optional[Symbol]:
        """A Name/Attribute expression appearing in *ctx*."""
        if isinstance(node, ast.Name):
            return self.resolve_local(ctx, node.id)
        if isinstance(node, ast.Attribute):
            chain: List[str] = []
            cursor: ast.expr = node
            while isinstance(cursor, ast.Attribute):
                chain.append(cursor.attr)
                cursor = cursor.value
            if not isinstance(cursor, ast.Name):
                return None
            root = ctx.imports.resolve(cursor.id)
            if root is None:
                # ``Class.method`` on a locally defined class.
                owner = self.resolve_local(ctx, cursor.id)
                if owner is not None and owner.kind == "class" \
                        and len(chain) == 1:
                    return self.method_on(owner.qualname, chain[0])
                return None
            return self.resolve_qualname(
                ".".join([root] + list(reversed(chain))))
        return None

    def method_on(self, class_qual: str, name: str) -> Optional[Symbol]:
        """Look *name* up on a class, walking project base classes."""
        queue, seen = [class_qual], set()
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            found = self.methods.get(current, {}).get(name)
            if found is not None:
                return found
            queue.extend(self.bases.get(current, []))
        return None

    def class_of(self, method: Symbol) -> Optional[Symbol]:
        if method.class_name is None:
            return None
        return self.classes.get(f"{method.module}.{method.class_name}")
