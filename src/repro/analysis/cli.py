"""``repro lint`` — run the simlint battery from the command line.

Exit status: 0 when no error-severity findings remain after pragma and
baseline suppression (warnings report but do not fail unless
``--strict``); 1 when errors remain; 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from ..atomicio import atomic_write_text
from .baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .engine import LintEngine
from .reporters import render_json, render_text
from .rules import all_rules

__all__ = ["add_lint_arguments", "run_lint_command", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the report here instead of stdout")
    parser.add_argument("--baseline", nargs="?", const=DEFAULT_BASELINE,
                        default=None, metavar="PATH",
                        help="suppress findings recorded in the baseline "
                             f"file (default path: {DEFAULT_BASELINE}; a "
                             "missing file is an empty baseline)")
    parser.add_argument("--write-baseline", nargs="?",
                        const=DEFAULT_BASELINE, default=None,
                        metavar="PATH",
                        help="record the current findings as the new "
                             "baseline and exit 0")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as failures")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule battery and exit")


def run_lint_command(args: argparse.Namespace) -> int:
    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.code}  {rule.severity:7s} {rule.name}: "
                  f"{rule.description}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"simlint: no such path: {missing[0]}", file=sys.stderr)
        return 2
    engine = LintEngine(rules, root=Path.cwd())
    result = engine.run(paths)
    findings = result.findings
    suppressed = result.suppressed

    if args.write_baseline is not None:
        entries = write_baseline(Path(args.write_baseline), findings)
        print(f"simlint: wrote {entries} baseline entries to "
              f"{args.write_baseline}")
        return 0

    if args.baseline is not None:
        baseline = load_baseline(Path(args.baseline))
        findings, baselined = apply_baseline(findings, baseline)
        suppressed += baselined

    renderer = render_json if args.format == "json" else render_text
    report = renderer(findings, result.files, suppressed)
    if args.out is not None:
        atomic_write_text(args.out, report + "\n")
    else:
        print(report)

    failing = [f for f in findings
               if f.severity == "error" or args.strict]
    return 1 if failing else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="AST-based invariant linter for the repro simulator")
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
