"""``repro lint`` — run the simlint battery from the command line.

Exit status: 0 when no error-severity findings remain after pragma and
baseline suppression (warnings report but do not fail unless
``--strict``); 1 when errors remain; 2 on usage errors.

Whole-program extras (DESIGN.md section 16):

* ``--graph-out PATH`` dumps the resolved call graph as JSON;
* ``--why RULE:path[:line]`` prints the call chain behind a finding;
* ``--changed`` scopes the report to git-changed files plus their
  call-graph neighbours (the analysis still runs whole-program — only
  the report is filtered, so cross-file findings stay sound);
* ``--format sarif`` emits SARIF 2.1.0 for GitHub code scanning.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Set

from ..atomicio import atomic_write_text
from .baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .engine import Finding, LintEngine, LintResult
from .reporters import render_json, render_sarif, render_text
from .rules import all_rules

__all__ = ["add_lint_arguments", "run_lint_command", "main"]

_RENDERERS = {"text": render_text, "json": render_json,
              "sarif": render_sarif}


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="output format")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the report here instead of stdout")
    parser.add_argument("--baseline", nargs="?", const=DEFAULT_BASELINE,
                        default=None, metavar="PATH",
                        help="suppress findings recorded in the baseline "
                             f"file (default path: {DEFAULT_BASELINE}; a "
                             "missing file is an empty baseline)")
    parser.add_argument("--write-baseline", nargs="?",
                        const=DEFAULT_BASELINE, default=None,
                        metavar="PATH",
                        help="record the current findings as the new "
                             "baseline (refused when --strict would "
                             "fail the same invocation)")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as failures")
    parser.add_argument("--changed", action="store_true",
                        help="report only findings in git-changed files "
                             "and their call-graph neighbours")
    parser.add_argument("--graph-out", default=None, metavar="PATH",
                        help="dump the whole-program call graph as JSON")
    parser.add_argument("--why", default=None, metavar="RULE:PATH[:LINE]",
                        help="print the call chain behind one finding "
                             "and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule battery and exit")


def _changed_files(root: Path) -> Optional[Set[str]]:
    """Repo-relative posix paths of modified + untracked .py files."""
    changed: Set[str] = set()
    for args in (["git", "diff", "--name-only", "HEAD"],
                 ["git", "ls-files", "--others", "--exclude-standard"]):
        proc = subprocess.run(args, cwd=root, capture_output=True,
                              text=True)
        if proc.returncode != 0:
            return None
        changed.update(line.strip() for line in proc.stdout.splitlines()
                       if line.strip().endswith(".py"))
    return changed


def _changed_scope(result: LintResult, changed: Set[str]) -> Set[str]:
    """Changed files plus every file one call edge away."""
    scope = set(changed)
    if result.project is None:
        return scope
    analysis = result.project.analysis()
    path_of = {qualname: symbol.path
               for qualname, symbol in analysis.symbols.functions.items()}
    for edge in analysis.graph.edges:
        caller_path = edge.path
        callee_path = path_of.get(edge.callee)
        if callee_path is None:
            continue
        if caller_path in scope:
            scope.add(callee_path)
        if callee_path in scope:
            scope.add(caller_path)
    return scope


def _explain(findings: List[Finding], spec: str) -> int:
    """``--why RULE:path[:line]``: print the matching finding's chain."""
    parts = spec.split(":")
    if len(parts) < 2:
        print("simlint: --why expects RULE:path[:line]", file=sys.stderr)
        return 2
    rule = parts[0]
    line: Optional[int] = None
    if parts[-1].isdigit():
        line = int(parts[-1])
        path = ":".join(parts[1:-1])
    else:
        path = ":".join(parts[1:])
    matches = [f for f in findings
               if f.rule == rule and f.path == path
               and (line is None or f.line == line)]
    if not matches:
        print(f"simlint: no live finding matches {spec} (pragma'd or "
              "baselined findings have no --why)", file=sys.stderr)
        return 2
    for finding in matches:
        print(f"{finding.path}:{finding.line}:{finding.col} "
              f"{finding.rule} {finding.severity}: {finding.message}")
        if finding.chain:
            for index, hop in enumerate(finding.chain):
                print(f"  [{index}] {hop}")
        else:
            print("  (file-local finding; no call chain)")
    return 0


def run_lint_command(args: argparse.Namespace) -> int:
    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.code}  {rule.severity:7s} {rule.name}: "
                  f"{rule.description}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"simlint: no such path: {missing[0]}", file=sys.stderr)
        return 2
    root = Path.cwd()
    engine = LintEngine(rules, root=root)
    result = engine.run(paths)
    findings = result.findings
    suppressed = result.suppressed

    if args.graph_out is not None and result.project is not None:
        graph = result.project.analysis().graph
        atomic_write_text(args.graph_out,
                          json.dumps(graph.as_dict(), indent=2,
                                     sort_keys=True) + "\n")
        print(f"simlint: wrote call graph ({len(graph.edges)} edges, "
              f"{graph.resolution_rate:.1%} resolved) to "
              f"{args.graph_out}")

    if args.changed:
        changed = _changed_files(root)
        if changed is None:
            print("simlint: --changed needs a git work tree",
                  file=sys.stderr)
            return 2
        scope = _changed_scope(result, changed)
        findings = [f for f in findings if f.path in scope]
        print(f"simlint: --changed scope: {len(changed)} changed "
              f"files, {len(scope)} with neighbours")

    if args.why is not None:
        return _explain(findings, args.why)

    if args.baseline is not None:
        baseline = load_baseline(Path(args.baseline))
        findings, baselined = apply_baseline(findings, baseline)
        suppressed += baselined

    failing = [f for f in findings
               if f.severity == "error" or args.strict]

    if args.write_baseline is not None:
        if failing and args.strict:
            # The old behaviour wrote the baseline before --strict got a
            # say, silently grandfathering the very findings the flag
            # was meant to gate on.  Only a clean run may rewrite it.
            print(f"simlint: NOT writing baseline: {len(failing)} "
                  "finding(s) fail --strict; fix or pragma them first",
                  file=sys.stderr)
            return 1
        entries = write_baseline(Path(args.write_baseline),
                                 result.findings)
        print(f"simlint: wrote {entries} baseline entries to "
              f"{args.write_baseline}")
        return 0

    renderer = _RENDERERS[args.format]
    report = renderer(findings, result.files, suppressed)
    if args.out is not None:
        atomic_write_text(args.out, report + "\n")
    else:
        print(report)

    return 1 if failing else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="AST-based invariant linter for the repro simulator")
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
