"""The simlint engine: parsing, name resolution, pragmas, rule driving.

simlint is a domain-specific static-analysis pass over the simulator's
own source.  It exists because the reproduction's headline claims are
only trustworthy while runs stay bit-deterministic, and the mistakes
that break determinism (wall-clock reads, unseeded RNGs, hash-order
dependence) or its bookkeeping (unit mixing, dead counters, swallowed
degradation errors) are *textually recognisable* long before they show
up as a drifted figure.

The engine is deliberately self-contained: it walks :mod:`ast` directly
(no flake8/pylint plugin machinery), resolves imports just well enough
to track aliases (``import numpy as np``, ``from random import Random``,
relative imports), and hands each rule a :class:`ModuleContext` per file
plus a whole-:class:`Project` finalize pass for cross-file rules such as
the dead-counter detector.

Suppression
-----------

A finding is suppressed by a pragma comment on the finding's line, or on
a standalone comment line immediately above it::

    started = time.perf_counter()  # simlint: ignore[SIM001] -- orchestration

    # simlint: ignore[SIM002] -- legacy stream, see DESIGN.md section 10
    rng = Random(seed * 31)

Multiple codes separate with commas (``ignore[SIM001,SIM005]``); the
text after ``--`` is a free-form justification (encouraged, unchecked).
Grandfathered findings can instead live in a checked-in baseline file
(see :mod:`repro.analysis.baseline`); pragmas are for decisions, the
baseline is for debt.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "ModuleContext",
    "Project",
    "Rule",
    "LintEngine",
    "iter_python_files",
    "qualified_call_name",
    "module_name_for_path",
]

#: ``# simlint: ignore[SIM001]`` / ``ignore[SIM001, SIM005] -- reason``.
_PRAGMA_RE = re.compile(
    r"#\s*simlint:\s*ignore\[\s*([A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*)\s*\]")

#: ``# simlint: skip-file`` anywhere in the first 10 lines opts a module
#: out entirely (reserved for generated code; unused in the tree today).
_SKIP_FILE_RE = re.compile(r"#\s*simlint:\s*skip-file")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str          # "error" | "warning"
    path: str              # repo-relative posix path
    line: int
    col: int
    message: str
    #: Interprocedural findings carry the call chain that produced
    #: them, entry point first, taint source last (``lint --why``).
    chain: Tuple[str, ...] = ()
    #: Extra lines a pragma may sit on and still suppress this finding
    #: (decorator lines of a flagged def, the body of a multi-line
    #: call).  ``(0, 0)`` means "just the finding line".
    span: Tuple[int, int] = (0, 0)

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used for baseline matching.

        Line numbers drift with every edit, so grandfathered findings
        match on (rule, path, message) with multiplicity instead.
        """
        return (self.rule, self.path, self.message)

    @property
    def pragma_lines(self) -> Tuple[int, int]:
        start, end = self.span
        if start <= 0:
            return (self.line, self.line)
        return (min(start, self.line), max(end, self.line))

    def as_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.chain:
            document["chain"] = list(self.chain)
        return document


def module_name_for_path(path: Path) -> str:
    """Best-effort dotted module name for *path*.

    Scope-sensitive rules (SIM001's hard core, SIM006, SIM008) key on
    the ``repro.*`` package a file belongs to.  The name is derived from
    the path alone so fixture trees in tests behave like the real tree:
    the segment after the last ``src`` component wins, else the segment
    from the last ``repro`` component, else the bare stem.
    """
    parts = list(path.with_suffix("").parts)
    if "src" in parts:
        last_src = len(parts) - 1 - parts[::-1].index("src")
        parts = parts[last_src + 1:]
    elif "repro" in parts:
        last_repro = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[last_repro:]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _parent_package(module: str) -> str:
    return module.rsplit(".", 1)[0] if "." in module else ""


class _ImportMap:
    """Alias -> qualified-name table for one module."""

    def __init__(self, tree: ast.Module, module: str,
                 is_package: bool = False) -> None:
        self.aliases: Dict[str, str] = {}
        # Relative imports in a package's __init__ resolve against the
        # package itself, not its parent.
        package = module if is_package else _parent_package(module)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    name = item.asname or item.name.split(".")[0]
                    target = item.name if item.asname else item.name.split(".")[0]
                    self.aliases[name] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Resolve ``from ..parallel import derive_seed``
                    # against the module's own dotted name.
                    anchor = package.split(".") if package else []
                    anchor = anchor[: len(anchor) - (node.level - 1)] \
                        if node.level > 1 else anchor
                    base = ".".join(anchor + ([node.module] if node.module else []))
                for item in node.names:
                    if item.name == "*":
                        continue
                    name = item.asname or item.name
                    self.aliases[name] = f"{base}.{item.name}" if base else item.name

    def resolve(self, name: str) -> Optional[str]:
        return self.aliases.get(name)


def qualified_call_name(node: ast.expr,
                        ctx: "ModuleContext") -> Optional[str]:
    """Resolve a call target to a dotted name through the import table.

    ``time.time`` (via ``import time``), ``perf_counter`` (via ``from
    time import perf_counter``) and ``np.random.rand`` (via ``import
    numpy as np``) all resolve to their canonical module path.  Returns
    ``None`` for locals and anything the table cannot see.
    """
    chain: List[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        chain.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    root = ctx.imports.resolve(cursor.id)
    if root is None:
        return None
    return ".".join([root] + list(reversed(chain)))


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one source file."""

    path: Path
    relpath: str
    module: str
    source: str
    tree: ast.Module
    imports: _ImportMap
    #: line -> set of suppressed rule codes ("*" suppresses all).
    pragmas: Dict[int, Set[str]] = field(default_factory=dict)
    #: (comment line, code) per pragma mention, for unknown-id checks.
    pragma_mentions: List[Tuple[int, str]] = field(default_factory=list)
    skip_file: bool = False

    @classmethod
    def parse(cls, path: Path, root: Optional[Path] = None) -> "ModuleContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        module = module_name_for_path(path)
        try:
            relpath = str(path.relative_to(root)) if root else str(path)
        except ValueError:
            relpath = str(path)
        ctx = cls(path=path, relpath=relpath.replace("\\", "/"),
                  module=module, source=source, tree=tree,
                  imports=_ImportMap(tree, module,
                                     is_package=path.name == "__init__.py"))
        ctx._scan_pragmas()
        _annotate_parents(tree)
        return ctx

    def _scan_pragmas(self) -> None:
        head = "\n".join(self.source.splitlines()[:10])
        if _SKIP_FILE_RE.search(head):
            self.skip_file = True
        lines = self.source.splitlines()
        try:
            tokens = list(tokenize.generate_tokens(StringIO(self.source).readline))
        except tokenize.TokenizeError:  # pragma: no cover - ast parsed already
            return
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if not match:
                continue
            codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
            line = tok.start[0]
            text_before = lines[line - 1][: tok.start[1]].strip() \
                if line - 1 < len(lines) else ""
            self.pragmas.setdefault(line, set()).update(codes)
            self.pragma_mentions.extend((line, code) for code in codes)
            if not text_before:
                # Standalone pragma comment: applies to the next code line.
                self.pragmas.setdefault(line + 1, set()).update(codes)

    def suppressed(self, finding: Finding) -> bool:
        start, end = finding.pragma_lines
        for line in range(start, end + 1):
            codes = self.pragmas.get(line)
            if codes and (finding.rule in codes or "*" in codes):
                return True
        return False

    def in_packages(self, prefixes: Sequence[str]) -> bool:
        return any(self.module == p or self.module.startswith(p + ".")
                   for p in prefixes)


def _annotate_parents(tree: ast.Module) -> None:
    """Attach ``_simlint_parent = (parent, fieldname)`` to every node."""
    tree._simlint_parent = None  # type: ignore[attr-defined]
    for parent in ast.walk(tree):
        for fieldname, value in ast.iter_fields(parent):
            children = value if isinstance(value, list) else [value]
            for child in children:
                if isinstance(child, ast.AST):
                    child._simlint_parent = (parent, fieldname)  # type: ignore[attr-defined]


def node_parent(node: ast.AST) -> Optional[Tuple[ast.AST, str]]:
    return getattr(node, "_simlint_parent", None)


def enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    """Nearest enclosing FunctionDef/AsyncFunctionDef, or None at module scope."""
    cursor = node_parent(node)
    while cursor is not None:
        parent, _ = cursor
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return parent
        cursor = node_parent(parent)
    return None


@dataclass
class Project:
    """All parsed modules of one lint run, for cross-file rules."""

    modules: List[ModuleContext]

    def by_module(self, name: str) -> Optional[ModuleContext]:
        for ctx in self.modules:
            if ctx.module == name:
                return ctx
        return None

    def analysis(self) -> "object":
        """The cached whole-program analysis (symbols + call graph).

        Built lazily on first use and shared by every graph-based rule
        of the run; see :mod:`repro.analysis.dataflow`.
        """
        cached = getattr(self, "_analysis", None)
        if cached is None:
            from .dataflow import WholeProgramAnalysis
            cached = WholeProgramAnalysis(self)
            object.__setattr__(self, "_analysis", cached)
        return cached


class Rule:
    """Base class for simlint rules.

    Subclasses set ``code`` (``SIMxxx``), ``name`` (short slug),
    ``severity`` and ``description``, and implement
    :meth:`check_module`; cross-file rules additionally implement
    :meth:`finalize`, which runs once after every module has been
    scanned.
    """

    code: str = "SIM000"
    name: str = "abstract"
    severity: str = "error"
    description: str = ""

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def finalize(self, project: Project) -> Iterator[Finding]:
        return iter(())

    # -- helpers shared by concrete rules -------------------------------------

    def finding(self, ctx: ModuleContext, node: ast.AST,
                message: str,
                chain: Sequence[str] = ()) -> Finding:
        line = getattr(node, "lineno", 1)
        span = (line, line)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # A pragma on (or above) the first decorator still covers a
            # finding anchored on the def line.
            if node.decorator_list:
                span = (node.decorator_list[0].lineno, line)
        else:
            # Multi-line calls: a pragma anywhere in the expression's
            # extent counts.
            end = getattr(node, "end_lineno", None)
            if isinstance(end, int) and end > line:
                span = (line, end)
        return Finding(rule=self.code, severity=self.severity,
                       path=ctx.relpath, line=line,
                       col=getattr(node, "col_offset", 0),
                       message=message, chain=tuple(chain), span=span)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into .py files, skipping caches."""
    seen: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            if candidate not in seen:
                seen.append(candidate)
                yield candidate


@dataclass
class LintResult:
    findings: List[Finding]
    suppressed: int
    files: int
    #: The parsed project, for --graph-out/--why/--changed consumers.
    project: Optional[Project] = None

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]


class LintEngine:
    """Drives a rule battery over a file set."""

    def __init__(self, rules: Sequence[Rule],
                 root: Optional[Path] = None) -> None:
        self.rules = list(rules)
        self.root = root or Path.cwd()

    def run(self, paths: Iterable[Path]) -> LintResult:
        modules: List[ModuleContext] = []
        findings: List[Finding] = []
        for path in iter_python_files(paths):
            try:
                ctx = ModuleContext.parse(path, root=self.root)
            except SyntaxError as exc:
                findings.append(Finding(
                    rule="SIM000", severity="error",
                    path=str(path), line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"syntax error: {exc.msg}"))
                continue
            if ctx.skip_file:
                continue
            modules.append(ctx)

        raw: List[Tuple[ModuleContext, Finding]] = []
        known_codes = {rule.code for rule in self.rules} | {"*", "SIM000"}
        for ctx in modules:
            for rule in self.rules:
                for finding in rule.check_module(ctx):
                    raw.append((ctx, finding))
            for line, code in ctx.pragma_mentions:
                if code not in known_codes:
                    raw.append((ctx, Finding(
                        rule="SIM000", severity="warning",
                        path=ctx.relpath, line=line, col=0,
                        message=(f"pragma references unknown rule id "
                                 f"{code!r}; it suppresses nothing — "
                                 "fix the id or drop the pragma"))))
        project = Project(modules=modules)
        ctx_by_path = {ctx.relpath: ctx for ctx in modules}
        for rule in self.rules:
            for finding in rule.finalize(project):
                raw.append((ctx_by_path.get(finding.path), finding))

        suppressed = 0
        for ctx, finding in raw:
            if ctx is not None and ctx.suppressed(finding):
                suppressed += 1
            else:
                findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return LintResult(findings=findings, suppressed=suppressed,
                          files=len(modules), project=project)
