"""repro.analysis — simlint, the simulator's invariant linter.

An AST-based static-analysis pass enforcing the determinism, spawn
safety, and unit discipline the reproduction's figures depend on.  See
DESIGN.md section 10 for the rule rationale and ``repro lint
--list-rules`` for the battery.

Public surface::

    from repro.analysis import lint_paths, all_rules, Finding

    result = lint_paths(["src"])       # -> LintResult
    for finding in result.findings:
        print(finding.path, finding.line, finding.rule, finding.message)
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Union

from .baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .engine import (
    Finding,
    LintEngine,
    LintResult,
    ModuleContext,
    Project,
    Rule,
)
from .reporters import render_json, render_sarif, render_text
from .rules import RULES, all_rules
from .callgraph import CallGraph, Edge
from .dataflow import WholeProgramAnalysis
from .symbols import Symbol, SymbolTable

__all__ = [
    "Finding",
    "LintEngine",
    "LintResult",
    "ModuleContext",
    "Project",
    "Rule",
    "RULES",
    "all_rules",
    "lint_paths",
    "DEFAULT_BASELINE",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "render_text",
    "render_json",
    "render_sarif",
    "Symbol",
    "SymbolTable",
    "CallGraph",
    "Edge",
    "WholeProgramAnalysis",
]


def lint_paths(paths: Iterable[Union[str, Path]],
               root: Union[str, Path, None] = None) -> LintResult:
    """Run the full rule battery over *paths* and return the result."""
    engine = LintEngine(all_rules(),
                        root=Path(root) if root is not None else None)
    return engine.run(Path(p) for p in paths)
