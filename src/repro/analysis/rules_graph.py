"""Graph-based rules SIM011..SIM013 (simlint v2, DESIGN.md section 16).

These rules only make sense whole-program: each one runs in
``finalize`` against the :class:`~repro.analysis.dataflow.
WholeProgramAnalysis` cached on the :class:`~repro.analysis.engine.
Project`, and every finding carries the call chain that produced it
(``repro lint --why`` prints it).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .dataflow import (
    MUTABLE_CONSTRUCTORS,
    MUTATOR_METHODS,
    SourceSite,
    Trace,
    WholeProgramAnalysis,
)
from .engine import Finding, ModuleContext, Project, Rule
from .rules import register
from .symbols import Symbol

__all__ = ["AsyncBlockingRule", "SetOrderEscapeRule",
           "SharedMutableGlobalRule"]

#: Packages whose async defs serve the live event loop (SIM011 scope).
_ASYNC_PACKAGES = ("repro.cluster",)

#: Modules whose output is part of the byte-identity contract: the
#: cluster feed, figure/report writers, telemetry export, and simlint's
#: own reporters (SIM012 sinks), plus anything matching _SINK_NAME_RE.
_OUTPUT_MODULES = ("repro.cluster.feed", "repro.experiments.report",
                   "repro.telemetry.export", "repro.analysis.reporters")

_SINK_NAME_RE = re.compile(r"^(write|render|emit|export|dump)_")


def _chain_finding(rule: Rule, ctx: Optional[ModuleContext],
                   symbol: Symbol, message: str,
                   trace: Optional[Trace]) -> Finding:
    """A finding anchored on *symbol*'s def line, chain attached."""
    node = symbol.node
    line = getattr(node, "lineno", 1)
    span = (line, line)
    decorators = getattr(node, "decorator_list", [])
    if decorators:
        span = (decorators[0].lineno, line)
    return Finding(rule=rule.code, severity=rule.severity,
                   path=symbol.path, line=line,
                   col=getattr(node, "col_offset", 0), message=message,
                   chain=trace.chain() if trace is not None else (),
                   span=span)


# ---------------------------------------------------------------------------
# SIM011 — blocking calls reachable from async defs
# ---------------------------------------------------------------------------


@register
class AsyncBlockingRule(Rule):
    """Async service code must never block the running event loop.

    ``repro.cluster.service`` keeps the asyncio loop responsive by
    pushing the deterministic core into an executor thread.  A
    ``time.sleep``, ``subprocess`` call, or synchronous file read
    anywhere in the *synchronous* call tree of an ``async def`` parks
    the whole loop — progress events stop flowing exactly when a long
    shard makes them interesting.  Deferred edges (lambdas handed to
    ``run_in_executor``, callbacks) are excluded: handing blocking work
    to an executor is the sanctioned pattern, not the bug.
    """

    code = "SIM011"
    name = "async-blocking"
    severity = "error"
    description = ("blocking calls (time.sleep, subprocess, synchronous "
                   "file I/O) must not be reachable from async def "
                   "bodies in repro.cluster; push them into an executor")

    def finalize(self, project: Project) -> Iterator[Finding]:
        analysis = project.analysis()
        async_defs = [
            symbol for symbol in analysis.symbols.functions.values()
            if symbol.is_async
            and symbol.ctx.in_packages(_ASYNC_PACKAGES)
        ]
        for symbol in sorted(async_defs, key=lambda s: s.qualname):
            trace = analysis.trace(symbol, analysis.blocking_sources,
                                   include_deferred=False)
            if trace is None:
                continue
            via = "" if trace.depth == 0 else \
                f" via {trace.summary()}"
            yield _chain_finding(
                self, None, symbol,
                f"async def {symbol.name}() reaches blocking "
                f"{trace.source.detail}{via}; the event loop stalls — "
                "move the call into loop.run_in_executor(...)",
                trace)


# ---------------------------------------------------------------------------
# SIM012 — set iteration order escaping into output paths
# ---------------------------------------------------------------------------


@register
class SetOrderEscapeRule(Rule):
    """Hash-ordered sets may not feed report/feed output, even laundered.

    SIM003 catches ``for x in {...}`` in one file; this rule catches the
    interprocedural version: a helper *returns* a raw set and an output
    path (feed writer, report renderer, telemetry export) iterates the
    result.  The emitted bytes then depend on PYTHONHASHSEED, which is
    exactly what the byte-identity contract forbids.  ``sorted(...)``
    around the call clears the hazard.
    """

    code = "SIM012"
    name = "set-order-escape"
    severity = "error"
    description = ("iterating a set returned by a helper inside an "
                   "output path (feed/report/export/render functions) "
                   "makes emitted bytes hash-order dependent; wrap the "
                   "call in sorted(...)")

    def finalize(self, project: Project) -> Iterator[Finding]:
        analysis = project.analysis()
        set_helpers = analysis.set_returning()
        if not set_helpers:
            return
        sinks = self._sink_roots(analysis)
        reachable = analysis.reachable_from(sinks)
        for qualname in sorted(reachable):
            symbol = analysis.symbols.functions.get(qualname)
            if symbol is None:
                continue
            root, walked = reachable[qualname]
            yield from self._check_sink_body(
                analysis, symbol, set_helpers, root, walked)

    @staticmethod
    def _sink_roots(analysis: WholeProgramAnalysis) -> List[Symbol]:
        roots = [
            symbol for symbol in analysis.symbols.functions.values()
            if symbol.ctx.module in _OUTPUT_MODULES
            or _SINK_NAME_RE.match(symbol.name)
        ]
        return sorted(roots, key=lambda s: s.qualname)

    def _check_sink_body(self, analysis: WholeProgramAnalysis,
                         symbol: Symbol,
                         set_helpers: Dict[str, SourceSite],
                         root: Symbol,
                         walked: Tuple, ) -> Iterator[Finding]:
        ctx = symbol.ctx
        set_calls: Dict[str, Tuple[str, SourceSite]] = {}

        def helper_for(expr: ast.expr) -> Optional[Tuple[str, SourceSite]]:
            if not isinstance(expr, ast.Call):
                return None
            target = analysis.symbols.resolve_expr(ctx, expr.func)
            if target is not None and target.qualname in set_helpers:
                return target.qualname, set_helpers[target.qualname]
            return None

        for stmt in ast.walk(symbol.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                hit = helper_for(stmt.value)
                if hit is not None:
                    set_calls[stmt.targets[0].id] = hit

        def hazardous(expr: ast.expr) -> Optional[Tuple[str, SourceSite]]:
            direct = helper_for(expr)
            if direct is not None:
                return direct
            if isinstance(expr, ast.Name):
                return set_calls.get(expr.id)
            return None

        for node in ast.walk(symbol.node):
            iterables: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.comprehension)):
                iterables.append(node.iter)
            elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Name) and node.func.id in (
                        "list", "tuple", "enumerate", "iter") and node.args:
                iterables.append(node.args[0])
            for iterable in iterables:
                hit = hazardous(iterable)
                if hit is None:
                    continue
                helper_qual, site = hit
                trace = Trace(root=root, edges=walked, source=site)
                yield self.finding(
                    ctx, iterable,
                    f"iterates the raw set returned by "
                    f"{helper_qual}() inside output path "
                    f"{symbol.name}(); emitted bytes become "
                    "hash-order dependent — wrap in sorted(...)",
                    chain=trace.chain())


# ---------------------------------------------------------------------------
# SIM013 — module-level mutables written by worker-side code
# ---------------------------------------------------------------------------


@register
class SharedMutableGlobalRule(Rule):
    """Worker-side code must not write module-level mutable state.

    Each sweep worker is its own process: a module-level dict or list
    mutated inside a task function (or anything it calls) diverges per
    process, silently reads back empty in the parent, and — worse —
    *does* share under ``--workers 1``, so the bug only appears at
    scale.  State a worker produces must travel in its return value.
    """

    code = "SIM013"
    name = "shared-mutable-global"
    severity = "error"
    description = ("module-level mutable globals (dict/list/set/...) "
                   "must not be written by SweepTask/run_shard worker "
                   "code; per-process copies diverge — return the "
                   "state instead")

    def finalize(self, project: Project) -> Iterator[Finding]:
        analysis = project.analysis()
        mutables = self._module_mutables(project)
        if not mutables:
            return
        workers = analysis.worker_side_functions()
        for qualname in sorted(workers):
            symbol = analysis.symbols.functions.get(qualname)
            if symbol is None:
                continue
            root, walked = workers[qualname]
            yield from self._check_worker(
                analysis, symbol, mutables, root, walked)

    @staticmethod
    def _module_mutables(project: Project) -> Dict[str, int]:
        """``module.NAME`` -> declaration line, for mutable globals."""
        found: Dict[str, int] = {}
        for ctx in project.modules:
            for stmt in ctx.tree.body:
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) \
                        and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                if value is None or not _is_mutable_literal(value):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        found[f"{ctx.module}.{target.id}"] = stmt.lineno
        return found

    def _check_worker(self, analysis: WholeProgramAnalysis,
                      symbol: Symbol, mutables: Dict[str, int],
                      root: Symbol, walked: Tuple) -> Iterator[Finding]:
        ctx = symbol.ctx
        node = symbol.node
        declared_global: Set[str] = set()
        local_names: Set[str] = set()
        args = getattr(node, "args", None)
        if args is not None:
            local_names.update(a.arg for a in (
                list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)))
            for extra in (args.vararg, args.kwarg):
                if extra is not None:
                    local_names.add(extra.arg)
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Global):
                declared_global.update(stmt.names)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign,
                                   ast.AugAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) \
                    else [stmt.target]
                for target in targets:
                    if isinstance(target, ast.Name) \
                            and target.id not in declared_global:
                        local_names.add(target.id)
            elif isinstance(stmt, (ast.For, ast.comprehension)):
                for target in ast.walk(stmt.target):
                    if isinstance(target, ast.Name):
                        local_names.add(target.id)
            elif isinstance(stmt, ast.withitem) \
                    and stmt.optional_vars is not None:
                for target in ast.walk(stmt.optional_vars):
                    if isinstance(target, ast.Name):
                        local_names.add(target.id)

        def global_target(name_node: ast.expr) -> Optional[str]:
            """The mutable global a Name refers to, if any."""
            if not isinstance(name_node, ast.Name):
                return None
            name = name_node.id
            if name in declared_global:
                qual = f"{ctx.module}.{name}"
                return qual if qual in mutables else None
            if name in local_names:
                return None
            qual = f"{ctx.module}.{name}"
            if qual in mutables:
                return qual
            imported = ctx.imports.resolve(name)
            if imported is not None and imported in mutables:
                return imported
            return None

        def emit(site: ast.AST, qual: str, how: str) -> Finding:
            trace = Trace(root=root, edges=walked, source=SourceSite(
                "global-write", f"{how} {qual}", ctx.relpath,
                getattr(site, "lineno", 1),
                getattr(site, "col_offset", 0)))
            entry = "" if not walked and root.qualname == symbol.qualname \
                else f" (reached from worker entry {root.name}())"
            return self.finding(
                ctx, site,
                f"{how} module-level mutable {qual} inside worker-side "
                f"{symbol.name}(){entry}; per-process copies diverge — "
                "return the state to the parent instead",
                chain=trace.chain())

        for stmt in ast.walk(node):
            if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) \
                    else [stmt.target]
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        qual = global_target(target.value)
                        if qual is not None:
                            yield emit(stmt, qual, "writes into")
                    elif isinstance(target, ast.Name) \
                            and target.id in declared_global:
                        qual = f"{ctx.module}.{target.id}"
                        if qual in mutables:
                            yield emit(stmt, qual, "rebinds")
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    if isinstance(target, ast.Subscript):
                        qual = global_target(target.value)
                        if qual is not None:
                            yield emit(stmt, qual, "deletes from")
            elif isinstance(stmt, ast.Call) \
                    and isinstance(stmt.func, ast.Attribute) \
                    and stmt.func.attr in MUTATOR_METHODS:
                qual = global_target(stmt.func.value)
                if qual is not None:
                    yield emit(stmt, qual, f".{stmt.func.attr}() on")


def _is_mutable_literal(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in MUTABLE_CONSTRUCTORS
    return False
