"""Finding renderers: human text, machine JSON, and SARIF 2.1.0.

The SARIF document is the GitHub code-scanning interchange shape: one
run, one ``tool.driver`` carrying the full rule catalog, one ``result``
per finding with a physical location.  Interprocedural findings embed
their call chain as related locations so the code-scanning UI can show
the path a taint took.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from typing import Dict, List

from .engine import Finding

__all__ = ["render_text", "render_json", "render_sarif"]


def render_text(findings: List[Finding], files: int,
                suppressed: int) -> str:
    """One ``path:line:col CODE severity: message`` line per finding."""
    lines = [
        f"{f.path}:{f.line}:{f.col} {f.rule} {f.severity}: {f.message}"
        for f in findings
    ]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    summary = (f"simlint: {files} files, {errors} errors, "
               f"{warnings} warnings")
    if suppressed:
        summary += f", {suppressed} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: List[Finding], files: int,
                suppressed: int) -> str:
    by_rule: Dict[str, int] = dict(Counter(f.rule for f in findings))
    document = {
        "version": 1,
        "files": files,
        "suppressed": suppressed,
        "summary": {
            "errors": sum(1 for f in findings if f.severity == "error"),
            "warnings": sum(1 for f in findings
                            if f.severity == "warning"),
            "by_rule": by_rule,
        },
        "findings": [f.as_dict() for f in findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)


_CHAIN_HOP_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): (?P<what>.*)$")


def _sarif_location(path: str, line: int, col: int,
                    message: str = "") -> Dict[str, object]:
    location: Dict[str, object] = {
        "physicalLocation": {
            "artifactLocation": {"uri": path,
                                 "uriBaseId": "%SRCROOT%"},
            "region": {"startLine": max(line, 1),
                       "startColumn": max(col, 0) + 1},
        },
    }
    if message:
        location["message"] = {"text": message}
    return location


def render_sarif(findings: List[Finding], files: int,
                 suppressed: int) -> str:
    """A SARIF 2.1.0 document for GitHub code scanning."""
    from .rules import all_rules

    driver_rules: List[Dict[str, object]] = [{
        "id": "SIM000",
        "name": "engine-diagnostic",
        "shortDescription": {"text": "simlint engine diagnostic "
                                     "(syntax error, unknown pragma id)"},
        "defaultConfiguration": {"level": "warning"},
    }]
    for rule in all_rules():
        driver_rules.append({
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {
                "level": "error" if rule.severity == "error"
                else "warning"},
        })

    results: List[Dict[str, object]] = []
    for finding in findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule,
            "level": finding.severity,
            "message": {"text": finding.message},
            "locations": [_sarif_location(finding.path, finding.line,
                                          finding.col)],
        }
        related: List[Dict[str, object]] = []
        for hop in finding.chain:
            match = _CHAIN_HOP_RE.match(hop)
            if match is not None:
                related.append(_sarif_location(
                    match.group("path"), int(match.group("line")), 0,
                    match.group("what")))
        if related:
            result["relatedLocations"] = related
        results.append(result)

    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "simlint",
                "rules": driver_rules,
            }},
            "results": results,
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True)
