"""Finding renderers: human text and machine JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List

from .engine import Finding

__all__ = ["render_text", "render_json"]


def render_text(findings: List[Finding], files: int,
                suppressed: int) -> str:
    """One ``path:line:col CODE severity: message`` line per finding."""
    lines = [
        f"{f.path}:{f.line}:{f.col} {f.rule} {f.severity}: {f.message}"
        for f in findings
    ]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    summary = (f"simlint: {files} files, {errors} errors, "
               f"{warnings} warnings")
    if suppressed:
        summary += f", {suppressed} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: List[Finding], files: int,
                suppressed: int) -> str:
    by_rule: Dict[str, int] = dict(Counter(f.rule for f in findings))
    document = {
        "version": 1,
        "files": files,
        "suppressed": suppressed,
        "summary": {
            "errors": sum(1 for f in findings if f.severity == "error"),
            "warnings": sum(1 for f in findings
                            if f.severity == "warning"),
            "by_rule": by_rule,
        },
        "findings": [f.as_dict() for f in findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)
