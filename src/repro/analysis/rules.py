"""The simlint rule battery (SIM001..SIM010, plus graph rules).

Each rule encodes one invariant the simulator's determinism, spawn
safety, or bookkeeping depends on.  DESIGN.md section 10 documents the
rationale and the incidents behind them (notably PR 3's fig9 seed drift,
which SIM002/SIM003 exist to make unrepresentable); section 16 covers
the whole-program layer — SIM001/SIM002/SIM004/SIM010 gain
interprocedural ``finalize`` passes here, and the graph-native rules
SIM011..SIM013 live in :mod:`repro.analysis.rules_graph`.

Adding a rule: subclass :class:`~repro.analysis.engine.Rule`, set
``code``/``name``/``severity``/``description``, implement
``check_module`` (and ``finalize`` for cross-file analysis), and
decorate with :func:`register`.  Add fixture tests in
``tests/test_analysis.py`` proving it fires and does not over-fire.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

from .engine import (
    Finding,
    ModuleContext,
    Project,
    Rule,
    enclosing_function,
    node_parent,
    qualified_call_name,
)

__all__ = ["register", "all_rules", "RULES"]

RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls
    return cls


def all_rules() -> List[Rule]:
    return [RULES[code]() for code in sorted(RULES)]


#: Packages whose code runs *inside* simulated time.  Wall-clock reads
#: here are never acceptable, pragma or not in spirit (the pragma still
#: works mechanically, but review should reject it).
SIM_TIME_PACKAGES = ("repro.sim", "repro.core", "repro.flash")

#: Packages that sit on the simulator's hot request path; telemetry
#: hooks here must stay nil-by-default (SIM006).
HOT_PATH_PACKAGES = SIM_TIME_PACKAGES + ("repro.dram", "repro.disk")

#: The typed error hierarchy of repro.core.errors (SIM008).
CORE_ERROR_NAMES = {
    "CacheError",
    "CacheCapacityError",
    "CacheDegradedError",
    "ReserveBlockLostError",
    "NoEvictableBlockError",
}


def _call_name(node: ast.Call, ctx: ModuleContext) -> Optional[str]:
    return qualified_call_name(node.func, ctx)


def _last_segment(qualified: str) -> str:
    return qualified.rsplit(".", 1)[-1]


def _enclosing_qualname(analysis, ctx: ModuleContext,
                        node: ast.AST) -> Optional[str]:
    """Qualname of the function/method whose body contains *node*."""
    fn = enclosing_function(node)
    if fn is None:
        return None
    cursor = node_parent(fn)
    while cursor is not None:
        parent, _ = cursor
        if isinstance(parent, ast.ClassDef):
            return f"{ctx.module}.{parent.name}.{fn.name}"
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: attribute to the enclosing symbol.
            return _enclosing_qualname(analysis, ctx, fn)
        cursor = node_parent(parent)
    return f"{ctx.module}.{fn.name}"


# ---------------------------------------------------------------------------
# SIM001 — wall clock
# ---------------------------------------------------------------------------

_WALL_CLOCK = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}


@register
class WallClockRule(Rule):
    """No wall-clock reads: simulated time comes from the event flow.

    Inside ``repro.sim``/``repro.core``/``repro.flash`` any wall-clock
    read is a determinism bug — two runs of the same trace would observe
    different "time".  Outside those packages the only legitimate use is
    orchestration interval timing (progress lines, report footnotes),
    which must use a monotonic counter and carry an explicit pragma so
    every wall-clock read in the tree is a reviewed decision.
    """

    code = "SIM001"
    name = "wall-clock"
    severity = "error"
    description = ("wall-clock reads (time.time, datetime.now, "
                   "perf_counter, ...) are forbidden in simulation "
                   "packages and must be pragma'd as orchestration "
                   "timing elsewhere; sweep entry points "
                   "(run_shard/run_cluster) may not reach one "
                   "transitively either")

    def finalize(self, project: Project) -> Iterator[Finding]:
        """Whole-program extension: entry points stay clock-free.

        ``run_shard``/``run_cluster`` are the result-bearing spines of
        the cluster experiments; any *unpragma'd* wall-clock read (or
        ``advance_clock`` call) in their transitive call tree would make
        results depend on host speed.  Direct reads in the entry's own
        body are the file-local check's job, so chains start at depth 1;
        a pragma at the source kills the taint — it is the review
        record, not a loophole.
        """
        analysis = project.analysis()
        for entry in analysis.cluster_entry_points():
            trace = analysis.trace(
                entry,
                lambda s: analysis.time_sources(s, codes=("SIM001",)),
                min_depth=1)
            if trace is None:
                continue
            yield self.finding(
                entry.ctx, entry.node,
                f"{entry.name}() reaches {trace.source.detail} "
                f"({trace.source.kind}) via {trace.summary()}; "
                "simulated results must not depend on the host clock",
                chain=trace.chain())

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        hard = ctx.in_packages(SIM_TIME_PACKAGES)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node, ctx)
            if name not in _WALL_CLOCK:
                continue
            if hard:
                yield self.finding(
                    ctx, node,
                    f"{name}() inside {ctx.module}: wall clock must never "
                    "leak into simulated time (use the event flow's "
                    "latency accounting instead)")
            else:
                yield self.finding(
                    ctx, node,
                    f"{name}() is a wall-clock read; orchestration "
                    "interval timing must use time.perf_counter() and "
                    "carry '# simlint: ignore[SIM001] -- <why>'")


# ---------------------------------------------------------------------------
# SIM002 — RNG seeding discipline
# ---------------------------------------------------------------------------

_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "sample", "shuffle", "seed", "getrandbits", "gauss", "normalvariate",
    "expovariate", "betavariate", "paretovariate", "triangular",
    "vonmisesvariate", "weibullvariate", "lognormvariate", "randbytes",
}

_NUMPY_GLOBAL_FNS = {
    "rand", "randn", "randint", "random", "random_sample", "seed",
    "choice", "shuffle", "permutation", "normal", "uniform",
    "exponential", "poisson", "binomial",
}

_RNG_CONSTRUCTORS = {"random.Random", "random.SystemRandom",
                     "numpy.random.default_rng",
                     "numpy.random.RandomState"}


@register
class RngSeedRule(Rule):
    """Every RNG flows from an explicit seed or ``parallel.derive_seed``.

    The process-global ``random`` module and ``numpy.random`` functions
    are spawn-hostile (worker processes fork/spawn with unrelated global
    state) and invisible to sweep reproducibility.  Ad-hoc seed
    arithmetic (``seed + 1``, ``(seed << 2) | 1``) is how PR 3's fig9
    drift happened: two streams that were meant to be identical (or
    independent) silently shared structure.  ``derive_seed(base, key)``
    makes the derivation explicit, collision-resistant, and
    PYTHONHASHSEED-immune.
    """

    code = "SIM002"
    name = "rng-seed"
    severity = "error"
    description = ("RNGs must be seeded from an explicit seed "
                   "parameter or parallel.derive_seed; no global-state "
                   "random functions, no module-level RNGs, no ad-hoc "
                   "seed arithmetic")

    def finalize(self, project: Project) -> Iterator[Finding]:
        """Whole-program extension: cross-module seed provenance.

        The file-local check sees ``Random(seed * 31)``; this pass sees
        ``Random(shifted(seed))`` where ``shifted`` lives two modules
        away and returns the same ad-hoc arithmetic — the fig9 bug
        shape, laundered through a helper.  Helper detection and call
        resolution both ride on the project call graph.
        """
        analysis = project.analysis()
        helpers = analysis.seed_arith_helpers()
        if not helpers:
            return
        from .dataflow import Trace
        for ctx in project.modules:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node, ctx)
                if name not in _RNG_CONSTRUCTORS:
                    continue
                seed_arg = node.args[0] if node.args else (
                    node.keywords[0].value if node.keywords else None)
                if not isinstance(seed_arg, ast.Call):
                    continue
                target = analysis.symbols.resolve_expr(ctx, seed_arg.func)
                if target is None or target.qualname not in helpers:
                    continue
                source = helpers[target.qualname]
                edges = tuple(
                    e for e in analysis.graph.out.get(
                        _enclosing_qualname(analysis, ctx, node) or "", ())
                    if e.callee == target.qualname
                    and e.line == seed_arg.lineno)
                root = analysis.symbols.functions.get(
                    _enclosing_qualname(analysis, ctx, node) or "")
                chain: Tuple[str, ...] = ()
                if root is not None:
                    chain = Trace(root=root, edges=edges,
                                  source=source).chain()
                yield self.finding(
                    ctx, node,
                    f"{_last_segment(name)}(...) seeded from "
                    f"{target.qualname}(), which {source.detail}; "
                    "ad-hoc seed arithmetic hides stream collisions — "
                    "use parallel.derive_seed(base, key)",
                    chain=chain)

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node, ctx)
            if name is None:
                continue
            if (name.startswith("random.")
                    and _last_segment(name) in _GLOBAL_RANDOM_FNS
                    and name.count(".") == 1):
                yield self.finding(
                    ctx, node,
                    f"{name}() uses the process-global RNG; construct a "
                    "seeded random.Random(seed) instead")
                continue
            if (name.startswith("numpy.random.")
                    and _last_segment(name) in _NUMPY_GLOBAL_FNS):
                yield self.finding(
                    ctx, node,
                    f"{name}() uses numpy's global RNG state; use "
                    "numpy.random.default_rng(seed) with an explicit "
                    "seed")
                continue
            if name in _RNG_CONSTRUCTORS:
                yield from self._check_constructor(ctx, node, name)

    def _check_constructor(self, ctx: ModuleContext, node: ast.Call,
                           name: str) -> Iterator[Finding]:
        short = _last_segment(name)
        if enclosing_function(node) is None:
            yield self.finding(
                ctx, node,
                f"module-level {short}(...) is shared mutable state and "
                "breaks process-pool spawn safety; construct RNGs inside "
                "the function that owns the stream")
            return
        if not node.args and not node.keywords:
            yield self.finding(
                ctx, node,
                f"unseeded {short}(): every stream must take an explicit "
                "seed parameter or parallel.derive_seed(base, key)")
            return
        seed_arg = node.args[0] if node.args else node.keywords[0].value
        yield from self._check_seed_expr(ctx, node, short, seed_arg)

    def _check_seed_expr(self, ctx: ModuleContext, node: ast.Call,
                         short: str, seed: ast.expr) -> Iterator[Finding]:
        if isinstance(seed, (ast.BinOp, ast.UnaryOp, ast.BoolOp)):
            yield self.finding(
                ctx, node,
                f"{short}(...) seeded with ad-hoc arithmetic; derive "
                "per-stream seeds via parallel.derive_seed(base, key) "
                "(the fig9 seed-drift class of bug)")
            return
        if isinstance(seed, ast.Call):
            inner = _call_name(seed, ctx)
            if inner is not None and _last_segment(inner) == "hash":
                yield self.finding(
                    ctx, node,
                    f"{short}(hash(...)) depends on PYTHONHASHSEED; use "
                    "parallel.derive_seed(base, key)")
            elif inner in _WALL_CLOCK:
                yield self.finding(
                    ctx, node,
                    f"{short}(...) seeded from the wall clock is "
                    "unreproducible by construction")
        # Name / Attribute / int constant / derive_seed(...) / rng
        # method calls are the approved forms.


# ---------------------------------------------------------------------------
# SIM003 — PYTHONHASHSEED / ordering hazards
# ---------------------------------------------------------------------------


@register
class HashOrderRule(Rule):
    """No ``hash()``/``id()``/raw-set ordering feeding simulator state.

    ``hash(str)`` is salted per process (PYTHONHASHSEED), ``id()`` is an
    address, and set iteration order follows the hash — all three make
    output depend on the interpreter invocation rather than the seed.
    ``hash`` inside a ``__hash__`` implementation is the protocol itself
    and is allowed; everything else must use ``parallel.derive_seed``
    (seeds) or ``sorted(...)`` (ordering).
    """

    code = "SIM003"
    name = "hash-order"
    severity = "error"
    description = ("hash()/id() results and raw set iteration order are "
                   "process-dependent; never feed them into seeds, "
                   "ordering, or telemetry keys")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, (ast.For, ast.comprehension)):
                iterable = node.iter
                if self._is_raw_set(iterable, ctx):
                    yield self.finding(
                        ctx, iterable,
                        "iterating a set directly has hash-dependent "
                        "order; wrap it in sorted(...)")

    def _check_call(self, ctx: ModuleContext,
                    node: ast.Call) -> Iterator[Finding]:
        if isinstance(node.func, ast.Name):
            if node.func.id == "hash" and not self._inside_dunder_hash(node):
                yield self.finding(
                    ctx, node,
                    "hash() is salted by PYTHONHASHSEED; outside __hash__ "
                    "use parallel.derive_seed for seeds and stable keys "
                    "for ordering")
            elif node.func.id == "id" and ctx.imports.resolve("id") is None:
                yield self.finding(
                    ctx, node,
                    "id() is a process-local address; never let it reach "
                    "seeds, ordering, or telemetry keys")
            elif node.func.id in ("list", "tuple", "enumerate", "iter"):
                if node.args and self._is_raw_set(node.args[0], ctx):
                    yield self.finding(
                        ctx, node,
                        f"{node.func.id}(set(...)) materialises "
                        "hash-dependent order; use sorted(...)")

    @staticmethod
    def _is_raw_set(node: ast.expr, ctx: ModuleContext) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return (node.func.id in ("set", "frozenset")
                    and ctx.imports.resolve(node.func.id) is None)
        return False

    @staticmethod
    def _inside_dunder_hash(node: ast.AST) -> bool:
        fn = enclosing_function(node)
        return fn is not None and getattr(fn, "name", "") == "__hash__"


# ---------------------------------------------------------------------------
# SIM004 — sweep-task payload picklability
# ---------------------------------------------------------------------------


@register
class PicklableTaskRule(Rule):
    """``SweepTask`` payloads must be picklable by construction.

    Workers import ``fn`` by qualified name and receive ``kwargs`` over
    a pipe; a lambda, closure, or bound method pickles either not at all
    (spawn) or by accident (fork), and the failure appears only at
    ``--workers 2``.  The rule demands ``fn`` be a module-level function
    (local name or ``module.attr``) and bans lambdas anywhere in the
    constructor.
    """

    code = "SIM004"
    name = "picklable-task"
    severity = "error"
    description = ("SweepTask payloads must be picklable: fn must be a "
                   "module-level callable and no lambdas/closures/bound "
                   "methods may ride in the task")

    def finalize(self, project: Project) -> Iterator[Finding]:
        """Whole-program extension: transitively unpicklable payloads.

        A payload value built by calling a helper that *returns* a
        lambda, nested function, open file handle, or EventLoop is just
        as unpicklable as writing the lambda inline — but the file-local
        check cannot see through the call.  Helper poisoning is
        transitive (``return make_cb()`` forwards it), computed once on
        the project graph.
        """
        analysis = project.analysis()
        poisoned = analysis.unpicklable_returns()
        if not poisoned:
            return
        from .dataflow import Trace
        for ctx in project.modules:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node, ctx)
                target = name if name is not None else self._bare_name(node)
                if target is None or _last_segment(target) != "SweepTask":
                    continue
                for value in self._payload_values(node):
                    if not isinstance(value, ast.Call):
                        continue
                    helper = analysis.symbols.resolve_expr(
                        ctx, value.func)
                    if helper is None or helper.qualname not in poisoned:
                        continue
                    source = poisoned[helper.qualname]
                    root = analysis.symbols.functions.get(
                        _enclosing_qualname(analysis, ctx, node) or "")
                    chain: Tuple[str, ...] = ()
                    if root is not None:
                        chain = Trace(root=root, edges=(),
                                      source=source).chain()
                    yield self.finding(
                        ctx, value,
                        f"SweepTask payload calls {helper.qualname}(), "
                        f"which {source.detail}; the task cannot cross "
                        "a process boundary — ship plain data and "
                        "rebuild the object worker-side",
                        chain=chain)

    @staticmethod
    def _payload_values(task: ast.Call) -> Iterator[ast.expr]:
        """Expressions that ride inside a SweepTask's kwargs payload."""
        payload: List[ast.expr] = list(task.args[2:])
        for kw in task.keywords:
            if kw.arg != "fn":
                payload.append(kw.value)
        for value in payload:
            if isinstance(value, ast.Dict):
                yield from value.values
            else:
                yield value

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        nested = self._nested_function_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node, ctx)
            target = name if name is not None else self._bare_name(node)
            if target is None or _last_segment(target) != "SweepTask":
                continue
            yield from self._check_task(ctx, node, nested)

    @staticmethod
    def _bare_name(node: ast.Call) -> Optional[str]:
        return node.func.id if isinstance(node.func, ast.Name) else None

    def _check_task(self, ctx: ModuleContext, node: ast.Call,
                    nested: Set[str]) -> Iterator[Finding]:
        for child in ast.walk(node):
            if isinstance(child, ast.Lambda):
                yield self.finding(
                    ctx, child,
                    "lambda inside a SweepTask cannot cross a process "
                    "boundary; hoist it to a module-level function")
        fn_value: Optional[ast.expr] = None
        if len(node.args) >= 2:
            fn_value = node.args[1]
        for kw in node.keywords:
            if kw.arg == "fn":
                fn_value = kw.value
        if fn_value is None or isinstance(fn_value, ast.Lambda):
            return
        if isinstance(fn_value, ast.Name):
            if fn_value.id in nested:
                yield self.finding(
                    ctx, fn_value,
                    f"SweepTask fn={fn_value.id!r} is a nested function "
                    "(closure); workers import fn by qualified name, so "
                    "it must live at module level")
        elif isinstance(fn_value, ast.Attribute):
            qualified = qualified_call_name(fn_value, ctx)
            if qualified is None:
                yield self.finding(
                    ctx, fn_value,
                    "SweepTask fn is an attribute of a local object "
                    "(bound method?); pass a module-level function "
                    "instead")

    @staticmethod
    def _nested_function_names(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if enclosing_function(node) is not None:
                    names.add(node.name)
        return names


# ---------------------------------------------------------------------------
# SIM005 — latency unit discipline
# ---------------------------------------------------------------------------

_UNIT_RE = re.compile(r"_(ns|us|ms|s)$")

#: Call names that convert between units — their result deliberately
#: carries the unit of their *name*, whatever went in.
_CONVERSION_RE = re.compile(r"(^|_)(to|as|from)_(ns|us|ms|s)$|_(ns|us|ms|s)_to_")


def _identifier_unit(identifier: str) -> Optional[str]:
    match = _UNIT_RE.search(identifier)
    return match.group(1) if match else None


@register
class UnitMixRule(Rule):
    """``_us``/``_ms``/``_s`` values may not mix without conversion.

    The simulator carries latency in microseconds, orchestration elapsed
    time in seconds, and some timing tables in milliseconds.  Adding or
    comparing across suffixes without an explicit conversion call (or a
    multiplicative factor, which clears the unit) is a silent
    10^3/10^6-scale error — exactly the class of bug that corrupts
    figure axes without failing any test.
    """

    code = "SIM005"
    name = "unit-mix"
    severity = "error"
    description = ("identifiers suffixed _ns/_us/_ms/_s may not meet in "
                   "+,-,comparison or assignment across units without "
                   "an explicit conversion")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        reported: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.Add, ast.Sub)):
                yield from self._check_pair(
                    ctx, node, self._unit_of(node.left),
                    self._unit_of(node.right), reported)
            elif isinstance(node, ast.Compare):
                units = [self._unit_of(node.left)] + [
                    self._unit_of(c) for c in node.comparators]
                concrete = [u for u in units if u is not None]
                if len(set(concrete)) > 1:
                    yield from self._check_pair(
                        ctx, node, concrete[0], concrete[1], reported)
            elif isinstance(node, ast.AugAssign) and isinstance(
                    node.op, (ast.Add, ast.Sub)):
                yield from self._check_pair(
                    ctx, node, self._target_unit(node.target),
                    self._unit_of(node.value), reported)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                yield from self._check_pair(
                    ctx, node, self._target_unit(node.targets[0]),
                    self._unit_of(node.value), reported)
            elif isinstance(node, ast.keyword) and node.arg is not None:
                yield from self._check_pair(
                    ctx, node.value, _identifier_unit(node.arg),
                    self._unit_of(node.value), reported)

    def _check_pair(self, ctx: ModuleContext, node: ast.AST,
                    left: Optional[str], right: Optional[str],
                    reported: Set[int]) -> Iterator[Finding]:
        if left is None or right is None or left == right:
            return
        line = getattr(node, "lineno", 1)
        if line in reported:
            return
        reported.add(line)
        yield self.finding(
            ctx, node,
            f"mixes units _{left} and _{right} without an explicit "
            "conversion (suffix-changing call or scale factor)")

    @classmethod
    def _target_unit(cls, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return _identifier_unit(node.id)
        if isinstance(node, ast.Attribute):
            return _identifier_unit(node.attr)
        return None

    @classmethod
    def _unit_of(cls, node: ast.expr) -> Optional[str]:
        """Unit of an expression, or None when unknown/cleared."""
        if isinstance(node, ast.Name):
            return _identifier_unit(node.id)
        if isinstance(node, ast.Attribute):
            return _identifier_unit(node.attr)
        if isinstance(node, ast.Call):
            func = node.func
            fn_name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else "")
            if _CONVERSION_RE.search(fn_name):
                return _identifier_unit(fn_name)
            if fn_name in ("min", "max", "sum", "abs", "round"):
                units = {cls._unit_of(a) for a in node.args}
                units.discard(None)
                if len(units) == 1:
                    return units.pop()
                return None
            return _identifier_unit(fn_name)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Add, ast.Sub)):
                return cls._unit_of(node.left) or cls._unit_of(node.right)
            # Multiplication/division is how conversions are written:
            # the factor clears the unit.
            return None
        if isinstance(node, ast.UnaryOp):
            return cls._unit_of(node.operand)
        if isinstance(node, ast.IfExp):
            return cls._unit_of(node.body) or cls._unit_of(node.orelse)
        return None


# ---------------------------------------------------------------------------
# SIM006 — telemetry hooks stay nil-by-default
# ---------------------------------------------------------------------------


@register
class TelemetryGuardRule(Rule):
    """Hot-path telemetry calls must be guarded by an ``is not None`` test.

    The telemetry contract (DESIGN.md section 8) is that an unobserved
    simulation pays nothing: hooks read ``self.telemetry`` into a local,
    test it, and only then construct events.  An unguarded call (or
    unconditional event construction) puts allocation on every request
    of every untelemetered run — and the <=10% overhead benchmark only
    polices the *observed* configuration.
    """

    code = "SIM006"
    name = "telemetry-guard"
    severity = "error"
    description = ("calls through .telemetry on hot-path packages must "
                   "sit under an 'is not None' (or truthiness) guard")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_packages(HOT_PATH_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_telemetry_call(node, ctx):
                continue
            if not self._guarded(node):
                yield self.finding(
                    ctx, node,
                    "unguarded telemetry call on a hot path; read the "
                    "handle into a local and guard with 'if telemetry "
                    "is not None:' so unobserved runs pay nothing")

    @staticmethod
    def _is_telemetry_call(node: ast.Call, ctx: ModuleContext) -> bool:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return False
        base = func.value
        if isinstance(base, ast.Attribute) and base.attr == "telemetry":
            return True
        if isinstance(base, ast.Name) and base.id == "telemetry":
            # A local named ``telemetry`` (the idiomatic hook shape) —
            # unless it is actually the imported module.
            return ctx.imports.resolve("telemetry") is None
        return False

    @staticmethod
    def _guarded(node: ast.AST) -> bool:
        cursor, child = node_parent(node), node
        while cursor is not None:
            parent, fieldname = cursor
            if isinstance(parent, (ast.If, ast.IfExp)):
                mentions = TelemetryGuardRule._test_mentions_telemetry(
                    parent.test)
                if fieldname == "body" and mentions:
                    return True
                # ``if telemetry is None: ... else: telemetry.hook()`` —
                # the orelse branch is the guarded one for inverted tests.
                if fieldname == "orelse" and mentions \
                        and TelemetryGuardRule._test_is_inverted(parent.test):
                    return True
            if isinstance(parent, ast.BoolOp) and isinstance(
                    parent.op, ast.And):
                # ``telemetry is not None and telemetry.hook(...)``
                index = parent.values.index(child) \
                    if child in parent.values else -1
                if index > 0 and any(
                        TelemetryGuardRule._test_mentions_telemetry(v)
                        for v in parent.values[:index]):
                    return True
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.Module)):
                return False
            child = parent
            cursor = node_parent(parent)
        return False

    @staticmethod
    def _test_is_inverted(test: ast.expr) -> bool:
        """True for ``X is None`` / ``not X`` shapes."""
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return True
        return (isinstance(test, ast.Compare)
                and any(isinstance(op, ast.Is) for op in test.ops)
                and any(isinstance(c, ast.Constant) and c.value is None
                        for c in test.comparators))

    @staticmethod
    def _test_mentions_telemetry(test: ast.expr) -> bool:
        for node in ast.walk(test):
            if isinstance(node, ast.Name) and node.id == "telemetry":
                return True
            if isinstance(node, ast.Attribute) and node.attr == "telemetry":
                return True
        return False


# ---------------------------------------------------------------------------
# SIM007 — dead counters
# ---------------------------------------------------------------------------

#: Stats containers whose declared fields must be written somewhere.
_STATS_CLASSES = {"ControllerStats", "CacheStats", "SimulationReport",
                  "FaultStats"}


@register
class DeadCounterRule(Rule):
    """Every declared stats counter must be written somewhere.

    A counter that exists in ``ControllerStats``/``CacheStats``/
    ``SimulationReport`` but is never assigned anywhere in the tree is
    worse than missing: reports render it as a confident zero.  The rule
    collects dataclass fields in pass one and attribute stores plus
    constructor keywords across the whole project in finalize.
    """

    code = "SIM007"
    name = "dead-counter"
    severity = "warning"
    description = ("fields declared on stats dataclasses "
                   "(ControllerStats, CacheStats, SimulationReport, "
                   "FaultStats) must be written by some code path")

    def __init__(self) -> None:
        self._declared: List[Tuple[str, str, str, int]] = []  # cls, field, path, line
        self._written: Set[str] = set()

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and node.name in _STATS_CLASSES:
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                            stmt.target, ast.Name):
                        fieldname = stmt.target.id
                        if fieldname.startswith("_"):
                            continue
                        self._declared.append(
                            (node.name, fieldname, ctx.relpath, stmt.lineno))
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Attribute):
                            self._written.add(sub.attr)
            elif isinstance(node, ast.Call):
                name = _call_name(node, ctx)
                target = name if name is not None else (
                    node.func.id if isinstance(node.func, ast.Name) else None)
                if target is not None and _last_segment(target) in _STATS_CLASSES:
                    for kw in node.keywords:
                        if kw.arg is not None:
                            self._written.add(kw.arg)
        return iter(())

    def finalize(self, project: Project) -> Iterator[Finding]:
        for clsname, fieldname, path, line in self._declared:
            if fieldname in self._written:
                continue
            yield Finding(
                rule=self.code, severity=self.severity, path=path,
                line=line, col=0,
                message=(f"{clsname}.{fieldname} is declared but never "
                         "written by any code path; a report would show "
                         "a confident zero — wire it up or remove it"))


# ---------------------------------------------------------------------------
# SIM008 — exception discipline
# ---------------------------------------------------------------------------


@register
class ExceptionDisciplineRule(Rule):
    """No bare ``except:`` / silently swallowed degradation errors.

    The typed hierarchy in ``repro.core.errors`` exists so the cache can
    tell "degrade and keep serving" from "genuine bug".  A bare except
    (or an ``except CacheDegradedError: pass``) re-flattens that
    distinction and hides capacity loss from the stats — the silent
    failure mode graceful degradation was built to avoid.
    """

    code = "SIM008"
    name = "exception-discipline"
    severity = "error"
    description = ("no bare except: in repro.core/repro.sim, and typed "
                   "cache errors may not be swallowed with a pass-only "
                   "handler")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_packages(("repro.core", "repro.sim")):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt "
                    "and hides degradation; name the exception types")
                continue
            caught = self._caught_names(node.type, ctx)
            swallowed = self._body_swallows(node)
            if swallowed and caught & CORE_ERROR_NAMES:
                names = ", ".join(sorted(caught & CORE_ERROR_NAMES))
                yield self.finding(
                    ctx, node,
                    f"swallowed {names} with a pass-only handler; "
                    "degradation errors must update stats or degrade "
                    "state, never vanish")
            elif swallowed and caught & {"Exception", "BaseException"}:
                yield self.finding(
                    ctx, node,
                    "'except Exception: pass' in a simulation package "
                    "hides real failures; handle or re-raise")

    @staticmethod
    def _caught_names(type_node: ast.expr, ctx: ModuleContext) -> Set[str]:
        names: Set[str] = set()
        nodes = type_node.elts if isinstance(type_node, ast.Tuple) \
            else [type_node]
        for node in nodes:
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
        return names

    @staticmethod
    def _body_swallows(handler: ast.ExceptHandler) -> bool:
        meaningful = [stmt for stmt in handler.body
                      if not (isinstance(stmt, ast.Expr)
                              and isinstance(stmt.value, ast.Constant))]
        return all(isinstance(stmt, ast.Pass) for stmt in meaningful)


# ---------------------------------------------------------------------------
# SIM009 — atomic artifact writes
# ---------------------------------------------------------------------------

#: The sanctioned tmp + os.replace implementation lives here; its own
#: internal ``open(tmp, "w")`` is the mechanism, not a violation.
_ATOMICIO_MODULE = "repro.atomicio"


@register
class AtomicWriteRule(Rule):
    """Artifacts are written atomically, or the write is pragma'd.

    A bare ``open(path, "w")`` (or ``Path.write_text``) truncates the
    destination before writing, so a crash mid-write destroys the
    previous artifact *and* leaves a torn new one — the resilience
    layer's checkpoint/resume guarantees are only as strong as the
    weakest artifact write.  :mod:`repro.atomicio` provides the
    ``tmp + os.replace`` discipline; append mode is exempt (the sweep
    journal's fsync'd appends are a reviewed durability design of their
    own), as is the atomicio module itself.
    """

    code = "SIM009"
    name = "atomic-write"
    severity = "error"
    description = ("truncating file writes (open(..., 'w'/'wb'/'x'), "
                   "Path.write_text/write_bytes) must go through "
                   "repro.atomicio or carry a pragma; append mode is "
                   "exempt")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_packages((_ATOMICIO_MODULE,)):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if self._is_truncating_open(node, ctx):
                yield self.finding(
                    ctx, node,
                    "open(..., 'w') truncates before writing; a crash "
                    "mid-write loses both old and new artifact — use "
                    "repro.atomicio.atomic_write_text/bytes (or pragma "
                    "a reviewed exception)")
            elif self._is_path_write(node):
                method = node.func.attr  # type: ignore[union-attr]
                yield self.finding(
                    ctx, node,
                    f".{method}() truncates before writing; use "
                    "repro.atomicio.atomic_write_text/bytes (or pragma "
                    "a reviewed exception)")

    @classmethod
    def _is_truncating_open(cls, node: ast.Call,
                            ctx: ModuleContext) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id != "open" or ctx.imports.resolve("open") is not None:
                return False
        elif _call_name(node, ctx) not in ("io.open", "pathlib.Path.open"):
            return False
        mode = node.args[1] if len(node.args) >= 2 else None
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if not isinstance(mode, ast.Constant) or not isinstance(
                mode.value, str):
            return False  # default "r", or dynamic (cannot judge)
        return any(flag in mode.value for flag in ("w", "x"))

    @staticmethod
    def _is_path_write(node: ast.Call) -> bool:
        return (isinstance(node.func, ast.Attribute)
                and node.func.attr in ("write_text", "write_bytes"))


# ---------------------------------------------------------------------------
# SIM010 — event-loop time discipline
# ---------------------------------------------------------------------------

#: Packages whose modules register handlers on the simulated event
#: loop — repro.sim owns the engine, repro.cluster's shard engine
#: reuses it.
_EVENT_LOOP_PACKAGES = ("repro.sim", "repro.cluster")
_CLOCK_ATTRS = ("clock_us", "now_us")


@register
class EventHandlerTimeRule(Rule):
    """Event handlers take *now* from the loop; they never make time.

    The concurrent engine's determinism rests on a single time
    authority: :class:`repro.sim.events.EventLoop` advances ``now_us``
    as it pops events, and every handler reads it from there.  A handler
    that reads a wall clock, calls ``advance_clock`` on a device, or
    writes a ``clock_us``/``now_us`` attribute forks the timeline —
    the same trace would replay with different timings depending on
    host speed or handler ordering.  Handlers are found syntactically:
    any function passed as the second argument of an
    ``EventType``-keyed ``.register(...)`` call in a ``repro.sim``
    module.
    """

    code = "SIM010"
    name = "event-handler-time"
    severity = "error"
    description = ("event-loop handlers must take time from the loop: "
                   "no wall-clock reads, no .advance_clock() calls, no "
                   "writes to clock_us/now_us attributes inside "
                   "registered handlers")

    def finalize(self, project: Project) -> Iterator[Finding]:
        """Whole-program extension: handlers' *callees* stay time-clean.

        The file-local check inspects a handler's own body; this pass
        resolves every registered handler project-wide (including
        ``self._on_x`` methods registered from another module) and walks
        its transitive callees for wall-clock reads, ``advance_clock``
        calls, and clock-attribute writes.  Chains start at depth 1 so
        direct violations stay with the file-local check; pragma'd
        sources are reviewed decisions and do not taint.
        """
        analysis = project.analysis()
        for handler in analysis.event_handlers(_EVENT_LOOP_PACKAGES):
            trace = analysis.trace(
                handler,
                lambda s: analysis.time_sources(s, codes=("SIM010",
                                                          "SIM001")),
                min_depth=1)
            if trace is None:
                continue
            yield self.finding(
                handler.ctx, handler.node,
                f"event handler {handler.name}() reaches "
                f"{trace.source.detail} ({trace.source.kind}) via "
                f"{trace.summary()}; handlers take time from "
                "loop.now_us only — model latency as event delays",
                chain=trace.chain())

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_packages(_EVENT_LOOP_PACKAGES):
            return
        handlers = self._handler_names(ctx.tree)
        if not handlers:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if node.name not in handlers:
                continue
            yield from self._check_handler(ctx, node)

    @staticmethod
    def _handler_names(tree: ast.AST) -> set:
        """Names of functions registered as event handlers.

        Matches ``<loop>.register(EventType.X, <handler>)`` where the
        handler is a bare name or a ``self.<name>``-style attribute.
        """
        names = set()
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "register"
                    and len(node.args) == 2):
                continue
            key = node.args[0]
            if not (isinstance(key, ast.Attribute)
                    and isinstance(key.value, ast.Name)
                    and key.value.id == "EventType"):
                continue
            handler = node.args[1]
            if isinstance(handler, ast.Attribute):
                names.add(handler.attr)
            elif isinstance(handler, ast.Name):
                names.add(handler.id)
        return names

    def _check_handler(self, ctx: ModuleContext,
                       func: ast.AST) -> Iterator[Finding]:
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                name = _call_name(node, ctx)
                if name in _WALL_CLOCK:
                    yield self.finding(
                        ctx, node,
                        f"{name}() inside event handler "
                        f"{func.name}(): handlers take time from "
                        "loop.now_us, never from the host clock")
                elif (isinstance(node.func, ast.Attribute)
                      and node.func.attr == "advance_clock"):
                    yield self.finding(
                        ctx, node,
                        f".advance_clock() inside event handler "
                        f"{func.name}(): the loop is the only time "
                        "authority; model latency as event delays")
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Attribute)
                            and target.attr in _CLOCK_ATTRS):
                        yield self.finding(
                            ctx, target,
                            f"write to .{target.attr} inside event "
                            f"handler {func.name}(): handlers must not "
                            "advance clocks directly — post an event "
                            "at the target time instead")


# The graph-based rules register themselves on import; keep this at the
# bottom so ``register`` and ``RULES`` exist when the module loads.
from . import rules_graph as _rules_graph  # noqa: E402,F401  (registration import)
