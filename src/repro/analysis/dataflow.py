"""Interprocedural dataflow on top of the call graph.

Three properties propagate through :class:`CallGraph` edges (DESIGN.md
section 16):

* **time-source taint** — wall-clock reads, ``.advance_clock()`` calls,
  and writes to clock attributes, reachable from event handlers and the
  cluster entry points (``run_shard``/``run_cluster``).  A site that
  carries a reviewed pragma is *not* a source: the pragma is the
  decision record, and taint must not resurrect it two calls upstream.
* **seed provenance** — helper functions that turn a seed parameter
  into ad-hoc arithmetic (the fig9 bug shape) poison any RNG
  constructed from their result, across modules.
* **pickle-safety** — helper functions returning lambdas, nested
  functions, open file handles, or :class:`EventLoop` instances poison
  any ``SweepTask`` payload built from their result.

Traces are breadth-first with predecessor links, so every finding can
carry its full call chain (surfaced by ``repro lint --why``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, Edge
from .engine import ModuleContext, Project, qualified_call_name
from .symbols import Symbol, SymbolTable

__all__ = ["SourceSite", "Trace", "WholeProgramAnalysis"]

#: Wall-clock reads (kept in sync with rules._WALL_CLOCK; re-declared
#: here so the dataflow layer has no import cycle with the rule battery).
WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

CLOCK_ATTRS = ("clock_us", "now_us")

#: Synchronous calls that park the thread: banned under async defs.
BLOCKING_CALLS = {
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.popen", "os.wait", "os.waitpid",
    "socket.create_connection",
    "urllib.request.urlopen",
    "io.open",
}

#: Methods that block when invoked on file/path-ish receivers.
BLOCKING_METHODS = ("read_text", "read_bytes", "write_text",
                    "write_bytes")

#: Container-mutating method names for the shared-global rule (SIM013).
MUTATOR_METHODS = frozenset({
    "append", "add", "extend", "insert", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort",
    "appendleft", "extendleft",
})

#: Module-level constructors that build mutable containers.
MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "defaultdict", "OrderedDict", "Counter",
    "deque",
})


@dataclass(frozen=True)
class SourceSite:
    """One taint source inside one function."""

    kind: str        # "wall-clock" | "advance-clock" | "clock-write" | ...
    detail: str      # human-readable, e.g. "time.monotonic()"
    path: str
    line: int
    col: int


@dataclass(frozen=True)
class Trace:
    """A root symbol, the call chain walked, and the source reached."""

    root: Symbol
    edges: Tuple[Edge, ...]
    source: SourceSite

    @property
    def depth(self) -> int:
        return len(self.edges)

    def chain(self) -> Tuple[str, ...]:
        """Printable hops, entry point first, source last."""
        hops = [f"{self.root.path}:{self.root.line}: {self.root.qualname}"]
        for edge in self.edges:
            hops.append(f"{edge.path}:{edge.line}: calls {edge.callee}")
        hops.append(f"{self.source.path}:{self.source.line}: "
                    f"{self.source.detail}")
        return tuple(hops)

    def summary(self) -> str:
        """The chain as a one-line arrow list of bare function names."""
        names = [self.root.name]
        names += [edge.callee.rsplit(".", 1)[-1] for edge in self.edges]
        return " -> ".join(names)


def _pragma_covers(ctx: ModuleContext, line: int,
                   codes: Sequence[str]) -> bool:
    active = ctx.pragmas.get(line)
    if not active:
        return False
    return "*" in active or any(code in active for code in codes)


class WholeProgramAnalysis:
    """Symbol table + call graph + cached per-function facts."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.symbols = SymbolTable.build(project)
        self.graph = CallGraph.build(project, self.symbols)
        self._fact_cache: Dict[str, Dict[str, List[SourceSite]]] = {}
        self._unpicklable: Optional[Dict[str, SourceSite]] = None
        self._seed_arith: Optional[Dict[str, SourceSite]] = None
        self._set_returning: Optional[Dict[str, SourceSite]] = None

    # -- generic reachability ---------------------------------------------

    def trace(self, root: Symbol,
              sources_of: Callable[[Symbol], List[SourceSite]],
              *, min_depth: int = 0, include_deferred: bool = True,
              ) -> Optional[Trace]:
        """First source reachable from *root* along confident edges."""
        queue: List[Tuple[str, Tuple[Edge, ...]]] = [(root.qualname, ())]
        seen: Set[str] = {root.qualname}
        while queue:
            qualname, walked = queue.pop(0)
            symbol = self.symbols.functions.get(qualname)
            if symbol is not None and len(walked) >= min_depth:
                sites = sources_of(symbol)
                if sites:
                    return Trace(root=root, edges=walked,
                                 source=sites[0])
            if len(walked) >= 12:   # depth guard; real chains are short
                continue
            for edge in self.graph.callees(
                    qualname, include_deferred=include_deferred):
                if edge.callee not in seen:
                    seen.add(edge.callee)
                    queue.append((edge.callee, walked + (edge,)))
        return None

    def reachable_from(self, roots: Sequence[Symbol],
                       *, include_deferred: bool = True,
                       ) -> Dict[str, Tuple[Symbol, Tuple[Edge, ...]]]:
        """qualname -> (entry root, chain) for everything reachable."""
        result: Dict[str, Tuple[Symbol, Tuple[Edge, ...]]] = {}
        for root in roots:
            queue: List[Tuple[str, Tuple[Edge, ...]]] = [
                (root.qualname, ())]
            while queue:
                qualname, walked = queue.pop(0)
                if qualname in result:
                    continue
                result[qualname] = (root, walked)
                if len(walked) >= 12:
                    continue
                for edge in self.graph.callees(
                        qualname, include_deferred=include_deferred):
                    if edge.callee not in result:
                        queue.append((edge.callee, walked + (edge,)))
        return result

    # -- per-function facts -----------------------------------------------

    def _facts(self, symbol: Symbol, kind: str,
               extractor: Callable[[Symbol], List[SourceSite]],
               ) -> List[SourceSite]:
        per_symbol = self._fact_cache.setdefault(symbol.qualname, {})
        if kind not in per_symbol:
            per_symbol[kind] = extractor(symbol)
        return per_symbol[kind]

    def time_sources(self, symbol: Symbol,
                     codes: Sequence[str] = ("SIM001", "SIM010"),
                     ) -> List[SourceSite]:
        """Unpragma'd wall-clock reads, advance_clock calls, clock writes.

        ``__init__`` bodies are exempt from the clock-write kind:
        constructing an engine *establishes* the simulated clock, which
        is the opposite of forking an already-running timeline.
        """

        def extract(sym: Symbol) -> List[SourceSite]:
            ctx = sym.ctx
            sites: List[SourceSite] = []
            in_init = sym.name == "__init__"
            for node in ast.walk(sym.node):
                if isinstance(node, ast.Call):
                    name = qualified_call_name(node.func, ctx)
                    if name in WALL_CLOCK_CALLS:
                        if not _pragma_covers(ctx, node.lineno, codes):
                            sites.append(SourceSite(
                                "wall-clock", f"{name}()", ctx.relpath,
                                node.lineno, node.col_offset))
                    elif isinstance(node.func, ast.Attribute) \
                            and node.func.attr == "advance_clock":
                        if not _pragma_covers(ctx, node.lineno, codes):
                            sites.append(SourceSite(
                                "advance-clock", ".advance_clock()",
                                ctx.relpath, node.lineno,
                                node.col_offset))
                elif isinstance(node, (ast.Assign, ast.AugAssign)) \
                        and not in_init:
                    targets = node.targets if isinstance(
                        node, ast.Assign) else [node.target]
                    for target in targets:
                        if isinstance(target, ast.Attribute) \
                                and target.attr in CLOCK_ATTRS \
                                and not _pragma_covers(
                                    ctx, target.lineno, codes):
                            sites.append(SourceSite(
                                "clock-write", f"write to .{target.attr}",
                                ctx.relpath, target.lineno,
                                target.col_offset))
            return sites

        return self._facts(symbol, "time:" + ",".join(sorted(codes)),
                           extract)

    def blocking_sources(self, symbol: Symbol) -> List[SourceSite]:
        """Synchronous blocking calls (SIM011 sources), pragma-aware."""

        def extract(sym: Symbol) -> List[SourceSite]:
            ctx = sym.ctx
            codes = ("SIM011",)
            sites: List[SourceSite] = []
            for call, deferred in _direct_calls(sym.node):
                if deferred:
                    continue   # handed to an executor/callback: fine
                name = qualified_call_name(call.func, ctx)
                detail: Optional[str] = None
                if name in BLOCKING_CALLS:
                    detail = f"{name}()"
                elif isinstance(call.func, ast.Name) \
                        and call.func.id == "open" \
                        and ctx.imports.resolve("open") is None:
                    detail = "open()"
                elif isinstance(call.func, ast.Attribute) \
                        and call.func.attr in BLOCKING_METHODS:
                    detail = f".{call.func.attr}()"
                if detail is not None and not _pragma_covers(
                        ctx, call.lineno, codes):
                    sites.append(SourceSite(
                        "blocking", detail, ctx.relpath, call.lineno,
                        call.col_offset))
            return sites

        return self._facts(symbol, "blocking", extract)

    # -- summaries over every function ------------------------------------

    def unpicklable_returns(self) -> Dict[str, SourceSite]:
        """qualname -> why the function's return can't cross a pipe."""
        if self._unpicklable is not None:
            return self._unpicklable
        facts: Dict[str, SourceSite] = {}
        for symbol in self.symbols.functions.values():
            site = _direct_unpicklable_return(symbol, self.symbols)
            if site is not None:
                facts[symbol.qualname] = site
        # ``return make_cb()`` forwards another factory's poison.
        for _ in range(4):
            grew = False
            for symbol in self.symbols.functions.values():
                if symbol.qualname in facts:
                    continue
                for ret in _returns(symbol.node):
                    if not isinstance(ret.value, ast.Call):
                        continue
                    target = self.symbols.resolve_expr(
                        symbol.ctx, ret.value.func)
                    if target is not None and target.qualname in facts:
                        facts[symbol.qualname] = facts[target.qualname]
                        grew = True
                        break
            if not grew:
                break
        self._unpicklable = facts
        return facts

    def seed_arith_helpers(self) -> Dict[str, SourceSite]:
        """qualname -> the ad-hoc seed arithmetic a helper returns."""
        if self._seed_arith is not None:
            return self._seed_arith
        facts: Dict[str, SourceSite] = {}
        for symbol in self.symbols.functions.values():
            site = _seed_arith_return(symbol)
            if site is not None:
                facts[symbol.qualname] = site
        self._seed_arith = facts
        return facts

    def set_returning(self) -> Dict[str, SourceSite]:
        """qualname -> the raw-set return of an order-hazardous helper."""
        if self._set_returning is not None:
            return self._set_returning
        facts: Dict[str, SourceSite] = {}
        for symbol in self.symbols.functions.values():
            site = _raw_set_return(symbol)
            if site is not None:
                facts[symbol.qualname] = site
        self._set_returning = facts
        return facts

    # -- entry points ------------------------------------------------------

    def event_handlers(self, packages: Sequence[str] = ("repro.sim",
                                                        "repro.cluster"),
                       ) -> List[Symbol]:
        """Functions registered on an EventType-keyed event loop."""
        handlers: List[Symbol] = []
        seen: Set[str] = set()
        for ctx in self.project.modules:
            if not ctx.in_packages(packages):
                continue
            for node in ast.walk(ctx.tree):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "register"
                        and len(node.args) == 2):
                    continue
                key = node.args[0]
                if not (isinstance(key, ast.Attribute)
                        and isinstance(key.value, ast.Name)
                        and key.value.id == "EventType"):
                    continue
                symbol = self._handler_symbol(ctx, node.args[1], node)
                if symbol is not None and symbol.qualname not in seen:
                    seen.add(symbol.qualname)
                    handlers.append(symbol)
        return sorted(handlers, key=lambda s: s.qualname)

    def _handler_symbol(self, ctx: ModuleContext, handler: ast.expr,
                        call: ast.Call) -> Optional[Symbol]:
        if isinstance(handler, ast.Attribute) and isinstance(
                handler.value, ast.Name) and handler.value.id == "self":
            from .engine import enclosing_function, node_parent
            cursor = node_parent(call)
            while cursor is not None:
                parent, _ = cursor
                if isinstance(parent, ast.ClassDef):
                    return self.symbols.method_on(
                        f"{ctx.module}.{parent.name}", handler.attr)
                cursor = node_parent(parent)
            return None
        return self.symbols.resolve_expr(ctx, handler)

    def cluster_entry_points(self) -> List[Symbol]:
        """``run_shard``/``run_cluster``-style sweep-driven entry points."""
        entries = [
            symbol for symbol in self.symbols.functions.values()
            if symbol.kind == "function"
            and symbol.name in ("run_shard", "run_cluster")
            and symbol.module.startswith("repro.")
        ]
        return sorted(entries, key=lambda s: s.qualname)

    def sweep_task_functions(self) -> List[Symbol]:
        """Every function shipped to workers as a SweepTask ``fn``."""
        found: Dict[str, Symbol] = {}
        for ctx in self.project.modules:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = qualified_call_name(node.func, ctx)
                bare = node.func.id if isinstance(node.func, ast.Name) \
                    else None
                label = name if name is not None else bare
                if label is None or label.rsplit(".", 1)[-1] != "SweepTask":
                    continue
                fn_value: Optional[ast.expr] = None
                if len(node.args) >= 2:
                    fn_value = node.args[1]
                for kw in node.keywords:
                    if kw.arg == "fn":
                        fn_value = kw.value
                if fn_value is None:
                    continue
                symbol = self.symbols.resolve_expr(ctx, fn_value)
                if symbol is not None and symbol.kind != "class":
                    found.setdefault(symbol.qualname, symbol)
        return sorted(found.values(), key=lambda s: s.qualname)

    def worker_side_functions(self) -> Dict[
            str, Tuple[Symbol, Tuple[Edge, ...]]]:
        """Everything reachable from a worker entry, with chains."""
        roots = {s.qualname: s for s in self.sweep_task_functions()}
        for entry in self.cluster_entry_points():
            if entry.name == "run_shard":
                roots.setdefault(entry.qualname, entry)
        return self.reachable_from(sorted(roots.values(),
                                          key=lambda s: s.qualname))


# -- fact extractors ------------------------------------------------------


def _returns(node: ast.AST) -> Iterator[ast.Return]:
    for child in ast.walk(node):
        if isinstance(child, ast.Return) and child.value is not None:
            yield child


def _direct_calls(node: ast.AST) -> Iterator[Tuple[ast.Call, bool]]:
    from .callgraph import _iter_calls
    yield from _iter_calls(node)


def _direct_unpicklable_return(symbol: Symbol,
                               table: SymbolTable) -> Optional[SourceSite]:
    node = symbol.node
    nested = {child.name for child in ast.walk(node)
              if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
              and child is not node}
    for ret in _returns(node):
        value = ret.value
        assert value is not None
        if isinstance(value, ast.Lambda):
            return SourceSite("unpicklable", "returns a lambda",
                              symbol.path, value.lineno,
                              value.col_offset)
        if isinstance(value, ast.Name) and value.id in nested:
            return SourceSite(
                "unpicklable", f"returns nested function {value.id}()",
                symbol.path, value.lineno, value.col_offset)
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name) and func.id == "open" \
                    and symbol.ctx.imports.resolve("open") is None:
                return SourceSite("unpicklable",
                                  "returns an open file handle",
                                  symbol.path, value.lineno,
                                  value.col_offset)
            target = table.resolve_expr(symbol.ctx, func)
            if target is not None and target.kind == "class" \
                    and target.name == "EventLoop":
                return SourceSite("unpicklable",
                                  "returns an EventLoop instance",
                                  symbol.path, value.lineno,
                                  value.col_offset)
        if isinstance(value, ast.Attribute) and not isinstance(
                value.value, ast.Name):
            continue
        if isinstance(value, ast.Attribute) \
                and isinstance(value.value, ast.Name) \
                and value.value.id == "self":
            owner = table.class_of(symbol)
            if owner is not None and table.method_on(
                    owner.qualname, value.attr) is not None:
                return SourceSite(
                    "unpicklable",
                    f"returns bound method self.{value.attr}",
                    symbol.path, value.lineno, value.col_offset)
    return None


def _seed_arith_return(symbol: Symbol) -> Optional[SourceSite]:
    node = symbol.node
    args = getattr(node, "args", None)
    if args is None:
        return None
    params = [a.arg for a in (list(args.posonlyargs) + list(args.args)
                              + list(args.kwonlyargs))]
    seed_params = {p for p in params if "seed" in p.lower()}
    if not seed_params:
        return None
    for ret in _returns(node):
        value = ret.value
        if not isinstance(value, (ast.BinOp, ast.UnaryOp, ast.BoolOp)):
            continue
        mentioned = {child.id for child in ast.walk(value)
                     if isinstance(child, ast.Name)}
        if mentioned & seed_params:
            return SourceSite(
                "seed-arith",
                f"returns ad-hoc arithmetic on "
                f"{sorted(mentioned & seed_params)[0]!r}",
                symbol.path, value.lineno, value.col_offset)
    return None


def _raw_set_return(symbol: Symbol) -> Optional[SourceSite]:
    node = symbol.node
    set_locals: Set[str] = set()
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and _is_raw_set_expr(stmt.value, symbol.ctx):
            set_locals.add(stmt.targets[0].id)
    for ret in _returns(node):
        value = ret.value
        assert value is not None
        if _is_raw_set_expr(value, symbol.ctx):
            return SourceSite("set-return", "returns a raw set",
                              symbol.path, value.lineno,
                              value.col_offset)
        if isinstance(value, ast.Name) and value.id in set_locals:
            return SourceSite(
                "set-return", f"returns set-valued local {value.id!r}",
                symbol.path, value.lineno, value.col_offset)
    return None


def _is_raw_set_expr(node: ast.expr, ctx: ModuleContext) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return (node.func.id in ("set", "frozenset")
                and ctx.imports.resolve(node.func.id) is None)
    return False
