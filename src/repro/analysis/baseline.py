"""Baseline handling: checked-in debt, distinguished from decisions.

A baseline file records findings that predate a rule and have been
consciously grandfathered rather than fixed.  Matching is by
``(rule, path, message)`` with multiplicity — line numbers drift with
every edit, messages only change when the finding itself does — so a
baselined finding stays suppressed across unrelated refactors but a
*new* instance of the same rule in the same file still fails the build
once the recorded count is exhausted.

The committed baseline (``.simlint-baseline.json`` at the repo root) is
empty: every finding the first full run raised was fixed or pragma'd
with a justification.  Keep it that way; ``--write-baseline`` exists
for emergencies, and every entry it writes should come with a DESIGN.md
note explaining why the debt was taken.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from ..atomicio import atomic_write_text
from .engine import Finding

__all__ = ["DEFAULT_BASELINE", "load_baseline", "write_baseline",
           "apply_baseline"]

DEFAULT_BASELINE = ".simlint-baseline.json"

_Key = Tuple[str, str, str]


def load_baseline(path: Path) -> Counter:
    """Read a baseline file into a multiset of finding keys.

    A missing file is an empty baseline (so ``--baseline`` is safe to
    pass unconditionally in CI); a malformed one raises.
    """
    if not path.exists():
        return Counter()
    document = json.loads(path.read_text(encoding="utf-8"))
    if document.get("version") != 1:
        raise ValueError(f"unsupported baseline version in {path}")
    counts: Counter = Counter()
    for entry in document.get("findings", []):
        key = (entry["rule"], entry["path"], entry["message"])
        counts[key] += int(entry.get("count", 1))
    return counts


def write_baseline(path: Path, findings: List[Finding]) -> int:
    """Write the current findings as the new baseline; returns #entries."""
    counts: Counter = Counter(f.baseline_key for f in findings)
    entries: List[Dict[str, object]] = []
    for (rule, relpath, message), count in sorted(counts.items()):
        entry: Dict[str, object] = {
            "rule": rule, "path": relpath, "message": message}
        if count > 1:
            entry["count"] = count
        entries.append(entry)
    document = {"version": 1, "findings": entries}
    atomic_write_text(path, json.dumps(document, indent=2, sort_keys=True)
                      + "\n")
    return len(entries)


def apply_baseline(findings: List[Finding],
                   baseline: Counter) -> Tuple[List[Finding], int]:
    """Split findings into (fresh, suppressed-count) against a baseline."""
    budget = Counter(baseline)
    fresh: List[Finding] = []
    suppressed = 0
    for finding in findings:
        key = finding.baseline_key
        if budget[key] > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed
