"""Flash wear-out and lifetime models (paper sections 4.1.3 and 6.1).

The paper models Flash cell lifetime with an exponential dependence on
oxide thickness,

    W = 10 ** (C1 * t_ox),

with ``t_ox`` normally distributed across cells (three standard deviations
equal to 15% of the mean), calibrated so that the probability of a cell
failing by the specification endurance (100,000 W/E cycles for SLC) is
1e-4.  Because ``log10 W`` is then itself normal, the calibration pins the
distribution completely:

    mu_log10  = log10(spec_cycles) / (1 - z_spec * stdev_frac)
    sigma_log10 = stdev_frac * mu_log10

where ``z_spec = Phi^-1(1 - spec_fail_prob) ~= 3.719`` and ``stdev_frac``
is sigma(t_ox)/mean(t_ox) (0.05 for the paper's nominal 15%/3-sigma).

Two consumers:

* :class:`CellLifetimeModel` answers the analytical questions behind
  Figure 6(b): given an ECC strength ``t``, up to how many W/E cycles does
  a page stay recoverable?  (The page survives while at most ``t`` of its
  ~16.9k cells have worn out, i.e. until the cell-failure probability
  crosses ``t / N`` — a quantile of the lognormal.)
* :class:`PageFailureSampler` supports the *functional* aging simulations
  (Figure 12): it lazily samples the cycle counts at which a concrete
  page's 1st, 2nd, ... cells die, using exact order-statistics sampling, so
  the simulator never draws 16.9k lifetimes per page.

MLC wear is folded in through *damage units*: one MLC-mode W/E cycle costs
``SLC_ENDURANCE / MLC_ENDURANCE`` (= 10) SLC-equivalent cycles, matching
Table 1's 10x endurance gap and making MLC->SLC density reduction a genuine
reliability lever, as in section 4.2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from random import Random
from statistics import NormalDist
from typing import List

from .timing import CellMode, MLC_ENDURANCE_CYCLES, SLC_ENDURANCE_CYCLES

__all__ = [
    "WearModelConfig",
    "CellLifetimeModel",
    "PageFailureSampler",
    "mlc_damage_factor",
    "damage_per_cycle",
]

_NORMAL = NormalDist()


def mlc_damage_factor() -> float:
    """SLC-equivalent damage of one MLC-mode W/E cycle (Table 1: 10x)."""
    return SLC_ENDURANCE_CYCLES / MLC_ENDURANCE_CYCLES


def damage_per_cycle(mode: CellMode) -> float:
    """Damage units consumed by a single W/E cycle in ``mode``."""
    return 1.0 if mode is CellMode.SLC else mlc_damage_factor()


@dataclass(frozen=True)
class WearModelConfig:
    """Calibration anchors of the exponential lifetime model.

    ``stdev_frac`` is sigma/mean of oxide thickness; the paper's "three
    standard deviations equal to 15% of the mean" gives 0.05.  Figure 6(b)
    additionally sweeps 0, 0.05, 0.10 and 0.20.

    ``spec_fail_prob`` is the per-cell failure probability at the spec
    endurance.  The default ``None`` pins the *first point of failure* of a
    ``cells_per_page``-cell page at ``spec_cycles`` — the paper's stated
    anchor ("first point of failure to occur at 100,000 W/E cycles"), which
    works out to a per-cell probability of 1/(N+1) ~= 6e-5, consistent with
    the paper's "of the order of 1e-4".
    """

    spec_cycles: float = float(SLC_ENDURANCE_CYCLES)
    spec_fail_prob: float | None = None
    stdev_frac: float = 0.05
    cells_per_page: int = 16_896  # (2048 data + 64 spare) bytes * 8

    def __post_init__(self) -> None:
        if self.spec_cycles <= 1:
            raise ValueError("spec_cycles must exceed 1")
        if self.cells_per_page < 2:
            raise ValueError("cells_per_page must be >= 2")
        if self.spec_fail_prob is not None and not 0 < self.spec_fail_prob < 0.5:
            raise ValueError("spec_fail_prob must be in (0, 0.5)")
        if self.stdev_frac < 0:
            raise ValueError("stdev_frac must be non-negative")
        z_spec = _NORMAL.inv_cdf(1.0 - self.effective_spec_fail_prob)
        if self.stdev_frac * z_spec >= 1.0:
            raise ValueError(
                f"stdev_frac={self.stdev_frac} too large for calibration "
                f"(must be < {1.0 / z_spec:.4f})"
            )

    @property
    def effective_spec_fail_prob(self) -> float:
        if self.spec_fail_prob is not None:
            return self.spec_fail_prob
        return 1.0 / (self.cells_per_page + 1)


class CellLifetimeModel:
    """Analytical lognormal cell-lifetime model (Figure 6(b) machinery)."""

    def __init__(self, config: WearModelConfig | None = None):
        self.config = config or WearModelConfig()
        cfg = self.config
        log_spec = math.log10(cfg.spec_cycles)
        if cfg.stdev_frac == 0.0:
            # Degenerate: every cell dies at exactly the spec endurance.
            self.mu_log10 = log_spec
            self.sigma_log10 = 0.0
        else:
            z_spec = _NORMAL.inv_cdf(1.0 - cfg.effective_spec_fail_prob)
            self.mu_log10 = log_spec / (1.0 - z_spec * cfg.stdev_frac)
            self.sigma_log10 = cfg.stdev_frac * self.mu_log10

    # -- distribution queries -------------------------------------------------

    def cell_failure_probability(self, cycles: float) -> float:
        """P(a cell has failed after ``cycles`` W/E cycles)."""
        if cycles <= 0:
            return 0.0
        if self.sigma_log10 == 0.0:
            return 1.0 if cycles >= 10 ** self.mu_log10 else 0.0
        z = (math.log10(cycles) - self.mu_log10) / self.sigma_log10
        return _NORMAL.cdf(z)

    def cycles_at_failure_quantile(self, quantile: float) -> float:
        """Cycle count by which a ``quantile`` fraction of cells has failed."""
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if self.sigma_log10 == 0.0:
            return 10 ** self.mu_log10
        return 10 ** (self.mu_log10 + _NORMAL.inv_cdf(quantile) * self.sigma_log10)

    def expected_failed_cells(self, cycles: float, n_cells: int) -> float:
        """Expected number of worn-out cells in an ``n_cells`` page."""
        return n_cells * self.cell_failure_probability(cycles)

    # -- Figure 6(b) ----------------------------------------------------------

    def max_tolerable_cycles(self, t: int,
                             cells_per_page: int | None = None) -> float:
        """Maximum W/E cycles with at most ``t`` cell failures expected.

        This is the Figure 6(b) quantity: a ``t``-error-correcting page
        remains recoverable until its (t+1)-th cell failure, whose expected
        arrival is the (t+1)/(N+1) order-statistic quantile of the cell
        lifetime distribution.  With the default calibration, ``t = 0``
        lands exactly at the 100k-cycle spec for every oxide-variation
        level, reproducing the paper's anchor.
        """
        if t < 0:
            raise ValueError("t must be non-negative")
        if cells_per_page is None:
            cells_per_page = self.config.cells_per_page
        if cells_per_page < 1:
            raise ValueError("cells_per_page must be positive")
        if self.sigma_log10 == 0.0:
            return 10 ** self.mu_log10
        quantile = min((t + 1.0) / (cells_per_page + 1.0), 1.0 - 1e-12)
        return self.cycles_at_failure_quantile(quantile)

    @staticmethod
    def figure_6b_series(
        t_values: range | List[int] | None = None,
        stdev_fracs: tuple[float, ...] = (0.0, 0.05, 0.10, 0.20),
        cells_per_page: int = 16_896,
    ) -> dict[float, list[tuple[int, float]]]:
        """The full Figure 6(b) family: tolerable W/E cycles vs ECC strength.

        Returns ``{stdev_frac: [(t, cycles), ...]}`` for t = 0..10 by
        default, one curve per oxide-variation level.
        """
        if t_values is None:
            t_values = range(0, 11)
        series: dict[float, list[tuple[int, float]]] = {}
        for frac in stdev_fracs:
            model = CellLifetimeModel(WearModelConfig(stdev_frac=frac))
            series[frac] = [
                (t, model.max_tolerable_cycles(t, cells_per_page))
                for t in t_values
            ]
        return series


@dataclass
class PageFailureSampler:
    """Lazily sampled cell-failure thresholds for one concrete page.

    ``thresholds[i]`` is the damage level (SLC-equivalent W/E cycles) at
    which the page's (i+1)-th cell dies.  Thresholds are the order
    statistics of ``n_cells`` i.i.d. lognormal lifetimes, generated with the
    sequential uniform-order-statistic recurrence so only as many as the
    caller inspects are ever drawn:

        1 - U_(i) = (1 - U_(i-1)) * V_i ** (1 / (n - i + 1)),  V_i ~ U(0,1)

    The functional aging simulator asks ``failed_cells(damage)`` after each
    erase; reconfiguration logic then compares the answer against the page's
    current ECC strength.
    """

    model: CellLifetimeModel
    n_cells: int
    rng: Random
    #: Set by :meth:`kill`: every cell reads as failed regardless of
    #: damage (infant-mortality / congenitally dead hardware).
    dead: bool = False
    _uniforms: List[float] = field(default_factory=list, repr=False)
    _thresholds: List[float] = field(default_factory=list, repr=False)

    def kill(self) -> None:
        """Declare the whole page dead: all cells fail at any damage.

        Used by fault injection to model infant-mortality blocks, which
        die long before the lognormal wear model would kill them.
        """
        self.dead = True

    def _extend(self) -> None:
        """Draw the next order statistic."""
        index = len(self._uniforms)
        if index >= self.n_cells:
            raise RuntimeError("all cells in the page have failure thresholds")
        previous_tail = 1.0 - self._uniforms[-1] if self._uniforms else 1.0
        v = self.rng.random()
        # Guard against v == 0 which would send the tail to 0 immediately.
        v = max(v, 1e-300)
        tail = previous_tail * v ** (1.0 / (self.n_cells - index))
        u = min(1.0 - tail, 1.0 - 1e-15)
        u = max(u, 1e-15)
        self._uniforms.append(u)
        if self.model.sigma_log10 == 0.0:
            threshold = 10 ** self.model.mu_log10
        else:
            threshold = 10 ** (
                self.model.mu_log10
                + _NORMAL.inv_cdf(u) * self.model.sigma_log10
            )
        self._thresholds.append(threshold)

    def failed_cells(self, damage: float) -> int:
        """Number of dead cells once the page has absorbed ``damage``."""
        if self.dead:
            return self.n_cells
        if damage <= 0:
            return 0
        while (
            len(self._thresholds) < self.n_cells
            and (not self._thresholds or self._thresholds[-1] <= damage)
        ):
            self._extend()
        count = 0
        for threshold in self._thresholds:
            if threshold <= damage:
                count += 1
            else:
                break
        return count

    def next_failure_damage(self, current_failures: int) -> float:
        """Damage level at which failure number ``current_failures + 1`` occurs."""
        if self.dead:
            return 0.0
        while len(self._thresholds) <= current_failures:
            if len(self._thresholds) >= self.n_cells:
                return math.inf
            self._extend()
        return self._thresholds[current_failures]
