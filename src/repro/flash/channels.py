"""Per-channel / per-plane NAND scheduling for the concurrent engine.

Real Flash throughput comes from interleaving operations across
independent channels and, within a channel, across planes (the DDR-NAND
SSD literature the ISSUE cites).  The functional device model
(:class:`repro.flash.device.FlashDevice`) executes operations serially
— it is the *state* substrate — so concurrency lives here, in the
timing domain: the concurrent engine replays each request's captured
device operations against a bank of channel/plane resources and charges
any resource wait as queue delay.

Determinism: assignment is least-loaded with lowest-index tie-break —
no hashes, no randomness — so a given op sequence always lands on the
same resources in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["ChannelConfig", "ScheduledOp", "NandScheduler"]


@dataclass(frozen=True)
class ChannelConfig:
    """Shape of the device's parallel fabric.

    ``channels * planes`` is the number of NAND operations that can be
    in flight at once; ``channels=1, planes=1`` reproduces the fully
    serial device of the compatibility path.
    """

    channels: int = 1
    planes: int = 1

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ValueError("channels must be >= 1")
        if self.planes < 1:
            raise ValueError("planes must be >= 1")

    @property
    def resources(self) -> int:
        return self.channels * self.planes


@dataclass(frozen=True)
class ScheduledOp:
    """Placement of one NAND op on the fabric."""

    channel: int
    plane: int
    start_us: float
    end_us: float
    #: Time the op sat waiting for its plane to free (0 when it started
    #: immediately); the engine charges this to the request's queue delay.
    wait_us: float


class NandScheduler:
    """Greedy least-loaded scheduler over ``channels x planes`` planes.

    Each plane is a single server: it executes one NAND operation at a
    time and frees at the op's end.  :meth:`schedule` places an op that
    becomes *ready* at ``ready_us`` on the plane that frees earliest
    (lowest plane index on ties — a deterministic total order), returning
    the placement and the wait it incurred.  Busy time is accumulated
    per channel for the utilization figures.
    """

    def __init__(self, config: ChannelConfig) -> None:
        self.config = config
        # free_at[channel * planes + plane]
        self._free_at_us: List[float] = [0.0] * config.resources
        self.channel_busy_us: List[float] = [0.0] * config.channels
        self.ops_scheduled = 0

    def _pick(self, ready_us: float) -> Tuple[int, float]:
        """Plane index with the earliest availability (ties: lowest index)."""
        best_index = 0
        best_free_us = self._free_at_us[0]
        for index in range(1, len(self._free_at_us)):
            free_us = self._free_at_us[index]
            if free_us < best_free_us:
                best_free_us = free_us
                best_index = index
            if best_free_us <= ready_us:
                # Nothing can start earlier than the ready time; the
                # lowest such index wins, and we already scan in order.
                break
        return best_index, best_free_us

    def schedule(self, ready_us: float, latency_us: float) -> ScheduledOp:
        """Place one op; returns where it ran and how long it waited."""
        if latency_us < 0:
            raise ValueError("latency_us must be non-negative")
        index, free_us = self._pick(ready_us)
        start_us = ready_us if free_us <= ready_us else free_us
        end_us = start_us + latency_us
        self._free_at_us[index] = end_us
        channel = index // self.config.planes
        plane = index % self.config.planes
        self.channel_busy_us[channel] += latency_us
        self.ops_scheduled += 1
        return ScheduledOp(channel=channel, plane=plane,
                           start_us=start_us, end_us=end_us,
                           wait_us=start_us - ready_us)

    def horizon_us(self) -> float:
        """Time at which the whole fabric falls idle."""
        return max(self._free_at_us)

    def utilization(self, span_us: float) -> List[float]:
        """Per-channel busy fraction over a ``span_us`` window.

        A channel with ``planes`` planes offers ``planes * span_us`` of
        service time, so the fraction is normalised by both.
        """
        if span_us <= 0:
            return [0.0] * self.config.channels
        capacity_us = span_us * self.config.planes
        return [busy_us / capacity_us for busy_us in self.channel_busy_us]
