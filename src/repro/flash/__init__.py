"""NAND Flash substrate: geometry, timing/power constants, wear, device.

Implements the dual-mode (SLC/MLC) NAND array the paper's disk cache sits
on: real erase-before-write semantics, per-frame density modes, the
exponential wear-out model of section 4.1.3, and the Table 1–3 constants.
"""

from .timing import (
    CellMode,
    FlashTiming,
    FlashPower,
    DramTiming,
    DramPower,
    DiskTiming,
    DiskPower,
    ITRSEntry,
    ITRS_ROADMAP,
    SLC_ENDURANCE_CYCLES,
    MLC_ENDURANCE_CYCLES,
    DEFAULT_FLASH_TIMING,
    DEFAULT_FLASH_POWER,
)
from .geometry import FlashGeometry, PageAddress, DEFAULT_GEOMETRY
from .wear import (
    WearModelConfig,
    CellLifetimeModel,
    PageFailureSampler,
    mlc_damage_factor,
    damage_per_cycle,
)
from .device import (
    DeviceOp,
    FlashDevice,
    FlashDeviceError,
    FlashStats,
    ProgramError,
    EraseError,
    PageState,
    ReadResult,
    ProgramResult,
    EraseResult,
    MLC_READ_SENSITIVITY,
)
from .channels import ChannelConfig, NandScheduler, ScheduledOp

__all__ = [
    "CellMode",
    "FlashTiming",
    "FlashPower",
    "DramTiming",
    "DramPower",
    "DiskTiming",
    "DiskPower",
    "ITRSEntry",
    "ITRS_ROADMAP",
    "SLC_ENDURANCE_CYCLES",
    "MLC_ENDURANCE_CYCLES",
    "DEFAULT_FLASH_TIMING",
    "DEFAULT_FLASH_POWER",
    "FlashGeometry",
    "PageAddress",
    "DEFAULT_GEOMETRY",
    "WearModelConfig",
    "CellLifetimeModel",
    "PageFailureSampler",
    "mlc_damage_factor",
    "damage_per_cycle",
    "DeviceOp",
    "FlashDevice",
    "FlashDeviceError",
    "FlashStats",
    "ProgramError",
    "EraseError",
    "PageState",
    "ReadResult",
    "ProgramResult",
    "EraseResult",
    "MLC_READ_SENSITIVITY",
    "ChannelConfig",
    "NandScheduler",
    "ScheduledOp",
]
