"""Device timing, power, and density constants (paper Tables 1–3).

Every latency and power number the paper's evaluation uses is collected
here, in one place, with the table it came from.  All latencies are in
microseconds and all powers in watts unless a name says otherwise.

* Table 1 — ITRS 2007 roadmap: cell density (um^2/bit) for SLC/MLC NAND and
  DRAM, write/erase endurance, and data retention, for 2007–2015.
* Table 2 — measured device characteristics: 1Gb DDR2 DRAM, 1Gb SLC NAND,
  4Gb MLC NAND, and a hard disk drive.
* Table 3 — the simulated platform configuration (latencies the system
  simulator plugs in, including the 4.2 ms IDE disk and 58–400 us BCH).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

__all__ = [
    "CellMode",
    "FlashTiming",
    "FlashPower",
    "DramTiming",
    "DramPower",
    "DiskTiming",
    "DiskPower",
    "ITRSEntry",
    "ITRS_ROADMAP",
    "SLC_ENDURANCE_CYCLES",
    "MLC_ENDURANCE_CYCLES",
    "DEFAULT_FLASH_TIMING",
    "DEFAULT_FLASH_POWER",
    "DEFAULT_DRAM_TIMING",
    "DEFAULT_DRAM_POWER",
    "DEFAULT_DISK_TIMING",
    "DEFAULT_DISK_POWER",
]


class CellMode(enum.Enum):
    """NAND cell density mode.

    The paper's dual-mode device stores 2 bits/cell in MLC mode; the
    programmable controller can fall back to SLC (1 bit/cell) per page for
    lower latency and ~10x endurance (Table 1, section 4.2).
    """

    SLC = "slc"
    MLC = "mlc"

    @property
    def bits_per_cell(self) -> int:
        return 1 if self is CellMode.SLC else 2


#: Write/erase endurance from Table 1 (2007/2009 columns, the configuration
#: years of the paper's platform).
SLC_ENDURANCE_CYCLES = 100_000
MLC_ENDURANCE_CYCLES = 10_000


@dataclass(frozen=True)
class FlashTiming:
    """Per-mode NAND latencies in microseconds (Tables 2 and 3)."""

    slc_read_us: float = 25.0
    slc_write_us: float = 200.0
    slc_erase_us: float = 1_500.0
    mlc_read_us: float = 50.0
    mlc_write_us: float = 680.0
    mlc_erase_us: float = 3_300.0

    def read_us(self, mode: CellMode) -> float:
        return self.slc_read_us if mode is CellMode.SLC else self.mlc_read_us

    def write_us(self, mode: CellMode) -> float:
        return self.slc_write_us if mode is CellMode.SLC else self.mlc_write_us

    def erase_us(self, mode: CellMode) -> float:
        return self.slc_erase_us if mode is CellMode.SLC else self.mlc_erase_us


@dataclass(frozen=True)
class FlashPower:
    """NAND power in watts (Table 2: 27 mW active, 6 uW idle for 1Gb SLC)."""

    active_w: float = 0.027
    idle_w: float = 6e-6


@dataclass(frozen=True)
class DramTiming:
    """DDR2 DRAM latencies (Tables 2/3: 55 ns access, tRC = 50 ns)."""

    access_ns: float = 55.0
    trc_ns: float = 50.0

    @property
    def access_us(self) -> float:
        return self.access_ns / 1000.0


@dataclass(frozen=True)
class DramPower:
    """DDR2 DRAM power per 1Gb device (Table 2).

    ``idle_active_w`` is idle power with the device in active mode;
    ``idle_powerdown_w`` is the power-down idle state (footnote: 18 mW).
    Read and write powers follow the Micron power-calculator convention the
    paper used: active power is drawn while a read or write burst is in
    flight, idle power the rest of the time.
    """

    active_w: float = 0.878
    idle_active_w: float = 0.080
    idle_powerdown_w: float = 0.018


@dataclass(frozen=True)
class DiskTiming:
    """Hard-drive latencies.

    Table 2 lists 8.5/9.5 ms read/write for a 750GB Barracuda; the simulated
    platform (Table 3) uses a laptop IDE disk with a 4.2 ms average access.
    """

    read_ms: float = 8.5
    write_ms: float = 9.5
    average_access_ms: float = 4.2

    @property
    def average_access_us(self) -> float:
        return self.average_access_ms * 1000.0


@dataclass(frozen=True)
class DiskPower:
    """HDD power (Table 2: 13.0 W active, 9.3 W idle for the 750GB drive;
    the paper's scaled experiments use laptop-drive numbers, see
    :mod:`repro.disk.model`)."""

    active_w: float = 13.0
    idle_w: float = 9.3


@dataclass(frozen=True)
class ITRSEntry:
    """One column of Table 1 (a roadmap year)."""

    year: int
    nand_slc_um2_per_bit: float
    nand_mlc_um2_per_bit: float
    dram_um2_per_bit: float
    slc_endurance: int
    mlc_endurance: int
    retention_years_min: int
    retention_years_max: int

    @property
    def mlc_density_advantage_over_dram(self) -> float:
        """How many times denser MLC NAND is than DRAM that year."""
        return self.dram_um2_per_bit / self.nand_mlc_um2_per_bit


#: Table 1, verbatim.
ITRS_ROADMAP: Dict[int, ITRSEntry] = {
    2007: ITRSEntry(2007, 0.0130, 0.0065, 0.0324, 100_000, 10_000, 10, 20),
    2009: ITRSEntry(2009, 0.0081, 0.0041, 0.0153, 100_000, 10_000, 10, 20),
    2011: ITRSEntry(2011, 0.0052, 0.0013, 0.0096, 1_000_000, 10_000, 10, 20),
    2013: ITRSEntry(2013, 0.0031, 0.0008, 0.0061, 1_000_000, 10_000, 20, 20),
    2015: ITRSEntry(2015, 0.0021, 0.0005, 0.0038, 1_000_000, 10_000, 20, 20),
}

DEFAULT_FLASH_TIMING = FlashTiming()
DEFAULT_FLASH_POWER = FlashPower()
DEFAULT_DRAM_TIMING = DramTiming()
DEFAULT_DRAM_POWER = DramPower()
DEFAULT_DISK_TIMING = DiskTiming()
DEFAULT_DISK_POWER = DiskPower()
