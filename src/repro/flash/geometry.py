"""NAND Flash array geometry: pages, frames, blocks, dual-mode capacity.

The paper's device (section 2.1, Figure 1(a), after Cho et al.) is a
dual-mode SLC/MLC NAND:

* a page holds 2048 data bytes plus 64 spare bytes for ECC;
* a *page frame* (one physical wordline's worth of cells) stores one page
  in SLC mode or two pages in MLC mode;
* a block erases as a unit and contains 64 frames — hence 64 SLC pages or
  128 MLC pages (128KB / 256KB of data).

Addresses are ``(block, frame, subpage)`` triples wrapped in
:class:`PageAddress`; ``subpage`` selects the upper/lower MLC page within a
frame and must be 0 for SLC frames.
"""

from __future__ import annotations

from dataclasses import dataclass

from .timing import CellMode

__all__ = [
    "FlashGeometry",
    "PageAddress",
    "DEFAULT_GEOMETRY",
]


@dataclass(frozen=True)
class PageAddress:
    """Physical address of one logical Flash page.

    ``subpage`` is 0 for SLC frames, and 0 or 1 for the two MLC pages that
    share a frame.
    """

    block: int
    frame: int
    subpage: int = 0

    def __post_init__(self) -> None:
        if self.block < 0 or self.frame < 0 or self.subpage not in (0, 1):
            raise ValueError(f"invalid page address {self!r}")


@dataclass(frozen=True)
class FlashGeometry:
    """Static array dimensions of the dual-mode NAND device."""

    page_data_bytes: int = 2048
    page_spare_bytes: int = 64
    frames_per_block: int = 64
    num_blocks: int = 1024

    def __post_init__(self) -> None:
        if min(self.page_data_bytes, self.page_spare_bytes,
               self.frames_per_block, self.num_blocks) < 1:
            raise ValueError("geometry dimensions must be positive")

    # -- per-mode derived quantities ----------------------------------------

    def pages_per_frame(self, mode: CellMode) -> int:
        return mode.bits_per_cell

    def pages_per_block(self, mode: CellMode) -> int:
        """64 in SLC mode, 128 in MLC mode (paper section 2.1)."""
        return self.frames_per_block * self.pages_per_frame(mode)

    def block_data_bytes(self, mode: CellMode) -> int:
        return self.pages_per_block(mode) * self.page_data_bytes

    def device_data_bytes(self, mode: CellMode) -> int:
        return self.num_blocks * self.block_data_bytes(mode)

    # -- physical cell accounting -------------------------------------------

    @property
    def cells_per_frame(self) -> int:
        """One cell per MLC bit: a frame physically holds 2 MLC pages."""
        return (self.page_data_bytes + self.page_spare_bytes) * 8

    @property
    def cells_per_block(self) -> int:
        return self.cells_per_frame * self.frames_per_block

    def data_cells_per_page(self, mode: CellMode) -> int:
        """Cells backing one logical page's data+spare area.

        An SLC page uses the frame's full cell count at 1 bit/cell; an MLC
        page uses half the frame's cells at 2 bits/cell — either way the bit
        count is (2048 + 64) * 8.
        """
        return self.cells_per_frame // self.pages_per_frame(mode)

    # -- capacity helpers -----------------------------------------------------

    @classmethod
    def for_capacity(cls, data_bytes: int, mode: CellMode = CellMode.MLC,
                     page_data_bytes: int = 2048, page_spare_bytes: int = 64,
                     frames_per_block: int = 64) -> "FlashGeometry":
        """Geometry with enough whole blocks to hold ``data_bytes`` in ``mode``.

        Used by experiments that specify Flash size as a capacity
        (e.g. "1GB Flash" in Table 3) rather than a block count.
        """
        if data_bytes < 1:
            raise ValueError("capacity must be positive")
        probe = cls(page_data_bytes, page_spare_bytes, frames_per_block, 1)
        block_bytes = probe.block_data_bytes(mode)
        num_blocks = -(-data_bytes // block_bytes)
        return cls(page_data_bytes, page_spare_bytes, frames_per_block,
                   num_blocks)

    def validate_address(self, address: PageAddress,
                         mode: CellMode) -> None:
        """Raise if ``address`` is outside the array or wrong for ``mode``."""
        if address.block >= self.num_blocks:
            raise IndexError(
                f"block {address.block} out of range "
                f"(device has {self.num_blocks} blocks)"
            )
        if address.frame >= self.frames_per_block:
            raise IndexError(
                f"frame {address.frame} out of range "
                f"(blocks have {self.frames_per_block} frames)"
            )
        if address.subpage >= self.pages_per_frame(mode):
            raise IndexError(
                f"subpage {address.subpage} invalid for {mode.value} frame"
            )


DEFAULT_GEOMETRY = FlashGeometry()
