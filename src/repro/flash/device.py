"""Functional dual-mode NAND Flash device simulator.

This is the silicon substrate under the paper's disk cache: a NAND array
with real NAND semantics —

* **erase-before-write**: a page programs exactly once per erase cycle;
  re-programming without an intervening block erase raises
  :class:`ProgramError` (this is the physical constraint that forces the
  cache layer into out-of-place writes and garbage collection);
* **block-granular erase**: pages share fate with their block;
* **per-frame density mode**: each page frame can be (re)configured as SLC
  (one page, fast, robust) or MLC (two pages, dense, fragile) when its
  block is erased, following the dual-mode designs of Cho et al. that the
  paper builds on (section 4.2);
* **wear**: every erase cycle deposits one damage unit in each frame; on a
  read, the number of raw bit errors equals the number of cells whose
  sampled failure threshold lies below the frame's *effective* damage —
  damage times an MLC read-margin sensitivity of 10x, which reproduces the
  Table 1 endurance gap (100k SLC vs 10k MLC cycles) and makes the
  MLC->SLC density switch a genuine reliability lever;
* **timing and energy**: every operation returns its Table 2/3 latency and
  accumulates active energy.

Payload storage is optional (``store_data=True``): functional ECC tests
store and corrupt real bytes, while the large trace-driven simulations run
metadata-only for speed.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from random import Random
from typing import Dict, Iterator, List, NamedTuple, Optional

from ..faults.injector import FaultInjector
from ..reliability.model import ReliabilityModel
from .geometry import FlashGeometry, PageAddress, DEFAULT_GEOMETRY
from .timing import (
    CellMode,
    FlashPower,
    FlashTiming,
    DEFAULT_FLASH_POWER,
    DEFAULT_FLASH_TIMING,
)
from .wear import CellLifetimeModel, PageFailureSampler

__all__ = [
    "FlashDeviceError",
    "ProgramError",
    "EraseError",
    "ProgramFailure",
    "EraseFailure",
    "PageState",
    "ReadResult",
    "ProgramResult",
    "EraseResult",
    "FlashStats",
    "DeviceOp",
    "FlashDevice",
    "MLC_READ_SENSITIVITY",
]


class DeviceOp(NamedTuple):
    """One captured NAND operation, as emitted by the device op sink.

    The concurrent engine replays these against the channel/plane
    scheduler (:mod:`repro.flash.channels`) to model device-level
    parallelism the serial functional device cannot express.
    """

    kind: str          # "read" | "program" | "erase"
    block: int
    latency_us: float

#: Effective-damage multiplier for MLC reads: MLC sensing margins are ~10x
#: tighter, which is exactly the Table 1 endurance ratio (100k/10k).
MLC_READ_SENSITIVITY = 10.0


class FlashDeviceError(Exception):
    """Base class for NAND protocol violations."""


class ProgramError(FlashDeviceError):
    """Raised when programming a page that is not in the erased state."""


class EraseError(FlashDeviceError):
    """Raised on invalid erase requests (e.g. bad block index)."""


class ProgramFailure(FlashDeviceError):
    """An otherwise-legal program operation reported a status failure.

    Unlike :class:`ProgramError` (a protocol violation by the caller),
    this models the NAND chip's own fail bit: the page frame is suspect
    and the data must be placed elsewhere.  The attempt still costs the
    full program latency, recorded in :attr:`latency_us`.
    """

    #: NAND ops captured before the failure; attached by
    #: :meth:`repro.core.controller.FlashCacheController.submit_program`
    #: so the event engine can still charge the fabric for the attempt.
    pending_ops: "List[DeviceOp]"

    def __init__(self, address: PageAddress, latency_us: float):
        super().__init__(f"program failed at {address}")
        self.address = address
        self.latency_us = latency_us
        self.pending_ops = []


class EraseFailure(FlashDeviceError):
    """A legal erase operation reported a status failure.

    Firmware convention (and the paper's block-retirement path) treats a
    failed erase as terminal for the block.  The attempt still costs the
    full erase latency, recorded in :attr:`latency_us`.
    """

    def __init__(self, block: int, latency_us: float):
        super().__init__(f"erase failed on block {block}")
        self.block = block
        self.latency_us = latency_us


class PageState:
    """Page lifecycle states (module-level constants, not an Enum, because
    the trace simulator touches these in hot loops)."""

    ERASED = 0
    PROGRAMMED = 1


@dataclass(frozen=True)
class ReadResult:
    """Outcome of a page read."""

    latency_us: float
    raw_bit_errors: int
    data: Optional[bytes]
    mode: CellMode


@dataclass(frozen=True)
class ProgramResult:
    latency_us: float
    mode: CellMode


@dataclass(frozen=True)
class EraseResult:
    latency_us: float
    erase_count: int


@dataclass
class FlashStats:
    """Cumulative operation counts, busy time (per kind), and energy."""

    reads: int = 0
    programs: int = 0
    erases: int = 0
    busy_us: float = 0.0
    read_busy_us: float = 0.0
    program_busy_us: float = 0.0
    erase_busy_us: float = 0.0
    energy_j: float = 0.0

    def record(self, latency_us: float, active_w: float,
               kind: str = "read") -> None:
        self.busy_us += latency_us
        if kind == "read":
            self.read_busy_us += latency_us
        elif kind == "program":
            self.program_busy_us += latency_us
        else:
            self.erase_busy_us += latency_us
        self.energy_j += active_w * latency_us * 1e-6

    def idle_energy(self, total_us: float, idle_w: float) -> float:
        """Idle energy over a wall-clock window of ``total_us``."""
        idle_us = max(total_us - self.busy_us, 0.0)
        return idle_w * idle_us * 1e-6


@dataclass
class _Frame:
    """One physical page frame: mode, per-subpage state, wear."""

    mode: CellMode
    states: List[int]
    data: Optional[List[Optional[bytes]]]
    damage: float = 0.0
    sampler: Optional[PageFailureSampler] = None


class FlashDevice:
    """The functional dual-mode NAND array.

    Parameters
    ----------
    geometry:
        Array dimensions; defaults to 2KB pages, 64-frame blocks.
    timing, power:
        Latency/power constants (Tables 2/3).
    lifetime_model:
        Wear model used to sample per-frame cell-failure thresholds.  Pass
        ``None`` to disable wear entirely (reads report zero raw errors) —
        useful for pure capacity/latency studies.
    initial_mode:
        Density mode every frame starts in (the paper's device boots MLC).
    store_data:
        Keep page payloads in memory so reads return real bytes.
    seed:
        Seed for the wear-threshold sampling RNG.
    soft_error_rate_per_bit:
        Probability of a *transient* (retention / read-disturb) bit error
        per cell per read.  Table 1 specifies 10-20 year retention, so the
        default is zero; reliability studies can raise it to exercise the
        ECC path with soft errors that, unlike wear-out, do not persist.
    fault_injector:
        Optional :class:`~repro.faults.FaultInjector` consulted on every
        operation.  Injected faults surface as extra raw bit errors on
        reads, :class:`ProgramFailure`/:class:`EraseFailure` on writes and
        erases, and all-bits-bad reads from infant-mortality blocks.
        ``None`` (the default) changes nothing.
    reliability:
        Optional :class:`~repro.reliability.ReliabilityModel` adding
        physics-driven raw bit errors (retention, read disturb, program
        interference, process variation) to every read.  The device
        keeps a monotonic operation clock (:attr:`clock_us`) the model's
        retention term integrates over; composes with (does not replace)
        the wear sampler and the fault injector.  ``None`` (the default)
        changes nothing.
    """

    def __init__(
        self,
        geometry: FlashGeometry = DEFAULT_GEOMETRY,
        timing: FlashTiming = DEFAULT_FLASH_TIMING,
        power: FlashPower = DEFAULT_FLASH_POWER,
        lifetime_model: Optional[CellLifetimeModel] = None,
        initial_mode: CellMode = CellMode.MLC,
        store_data: bool = False,
        seed: int = 0,
        soft_error_rate_per_bit: float = 0.0,
        fault_injector: Optional[FaultInjector] = None,
        reliability: Optional[ReliabilityModel] = None,
    ):
        if soft_error_rate_per_bit < 0 or soft_error_rate_per_bit > 1:
            raise ValueError("soft_error_rate_per_bit must be in [0, 1]")
        self.geometry = geometry
        self.timing = timing
        self.power = power
        self.lifetime_model = lifetime_model
        self.initial_mode = initial_mode
        self.store_data = store_data
        self.soft_error_rate_per_bit = soft_error_rate_per_bit
        self.fault_injector = fault_injector
        self.reliability = reliability
        #: Monotonic device time (us): advances with every operation's
        #: latency plus any idle time the caller deposits via
        #: :meth:`advance_clock`.  The reliability model's retention
        #: term ages data against this clock.
        self.clock_us = 0.0
        self.stats = FlashStats()
        #: Optional :class:`repro.telemetry.Telemetry` handle.  ``None``
        #: (the default) keeps every operation on the historical code
        #: path; attaching costs one attribute check per operation.
        self.telemetry = None
        #: Optional per-operation sink ``sink(kind, block, latency_us)``
        #: invoked after every read/program/erase (including ones that
        #: raise a status failure — the plane was occupied either way).
        #: The concurrent engine attaches one to capture each request's
        #: op stream for channel/plane scheduling; ``None`` (the
        #: default) changes nothing.
        self.op_sink = None
        self._rng = Random(seed)
        self._erase_counts: List[int] = [0] * geometry.num_blocks
        # Frames are created lazily: large devices in metadata-only runs
        # only materialise the blocks a workload actually touches.
        self._frames: Dict[tuple[int, int], _Frame] = {}

    # -- non-blocking entry points ---------------------------------------------

    @contextmanager
    def capture_ops(self, into: List[DeviceOp]) -> Iterator[List[DeviceOp]]:
        """Collect every NAND op issued inside the block into ``into``.

        This is the device's submit-side hook: callers (controller and
        hierarchy ``submit_*`` entry points) run the functional operation
        under capture and hand the recorded op stream to the event
        engine, which schedules it on channels/planes.  Nesting chains:
        an outer capture still sees ops recorded by an inner one.
        """
        previous = self.op_sink
        if previous is None:
            def sink(kind: str, block: int, latency_us: float) -> None:
                into.append(DeviceOp(kind, block, latency_us))
        else:
            def sink(kind: str, block: int, latency_us: float) -> None:
                into.append(DeviceOp(kind, block, latency_us))
                previous(kind, block, latency_us)
        self.op_sink = sink
        try:
            yield into
        finally:
            self.op_sink = previous

    # -- frame bookkeeping ----------------------------------------------------

    def _frame(self, block: int, frame: int) -> _Frame:
        key = (block, frame)
        existing = self._frames.get(key)
        if existing is not None:
            return existing
        created = _Frame(
            mode=self.initial_mode,
            states=[PageState.ERASED] * self.geometry.pages_per_frame(
                self.initial_mode
            ),
            data=(
                [None] * self.geometry.pages_per_frame(self.initial_mode)
                if self.store_data else None
            ),
        )
        self._frames[key] = created
        return created

    def _sampler(self, frame: _Frame) -> PageFailureSampler:
        if frame.sampler is None:
            frame.sampler = PageFailureSampler(
                model=self.lifetime_model,  # type: ignore[arg-type]
                n_cells=self.geometry.cells_per_frame,
                rng=Random(self._rng.getrandbits(64)),
            )
        return frame.sampler

    def frame_mode(self, block: int, frame: int) -> CellMode:
        # Pure query: a frame no operation touched can only be in the
        # initial mode (mode changes happen during erase, which
        # materialises the frame), so don't materialise it here.
        existing = self._frames.get((block, frame))
        return existing.mode if existing is not None else self.initial_mode

    def block_frame_modes(self, block: int) -> List[CellMode]:
        """Modes of every frame in ``block``, in frame order.

        Bulk form of :meth:`frame_mode` for the capacity queries that
        walk whole blocks; like it, never materialises frames.
        """
        get = self._frames.get
        initial = self.initial_mode
        return [
            frame.mode if (frame := get((block, index))) is not None
            else initial
            for index in range(self.geometry.frames_per_block)
        ]

    def erase_count(self, block: int) -> int:
        self._check_block(block)
        return self._erase_counts[block]

    def frame_damage(self, block: int, frame: int) -> float:
        # Pure query, same reasoning as frame_mode: untouched frames
        # carry zero damage by construction.
        existing = self._frames.get((block, frame))
        return existing.damage if existing is not None else 0.0

    def page_state(self, address: PageAddress) -> int:
        frame = self._frame(address.block, address.frame)
        self.geometry.validate_address(address, frame.mode)
        return frame.states[address.subpage]

    # -- NAND operations --------------------------------------------------------

    def read_page(self, address: PageAddress) -> ReadResult:
        """Read one page: returns latency, raw bit errors, optional data."""
        frame = self._frame(address.block, address.frame)
        self.geometry.validate_address(address, frame.mode)
        latency = self.timing.read_us(frame.mode)
        self.stats.reads += 1
        self.stats.record(latency, self.power.active_w, kind="read")
        self.clock_us += latency
        sink = self.op_sink
        if sink is not None:
            sink("read", address.block, latency)
        # No telemetry hook here: nand.reads is harvested from
        # DeviceStats at end of run (Telemetry.harvest_cache_counters).
        errors = self._raw_bit_errors(frame)
        injector = self.fault_injector
        if injector is not None:
            if injector.block_dead(address.block):
                self._kill_frame(frame)
                errors = self.geometry.cells_per_frame
            else:
                errors += injector.read_fault_bits(address.block,
                                                   address.frame)
        model = self.reliability
        if model is not None:
            errors += model.read_errors(
                address.block, address.frame, frame.damage, frame.mode,
                self.clock_us, self.geometry.cells_per_frame)
            model.note_read(address.block, address.frame)
        return ReadResult(
            latency_us=latency,
            raw_bit_errors=errors,
            data=frame.data[address.subpage] if frame.data is not None else None,
            mode=frame.mode,
        )

    def program_page(self, address: PageAddress,
                     data: Optional[bytes] = None) -> ProgramResult:
        """Program an erased page; raises :class:`ProgramError` otherwise.

        With a fault injector attached the operation can also raise
        :class:`ProgramFailure` — the attempt burns the page (it needs an
        erase before any retry) and costs the full program latency.
        """
        frame = self._frame(address.block, address.frame)
        self.geometry.validate_address(address, frame.mode)
        if frame.states[address.subpage] != PageState.ERASED:
            raise ProgramError(
                f"page {address} is not erased; NAND requires a block erase "
                f"before reprogramming"
            )
        if data is not None and len(data) > self.geometry.page_data_bytes:
            raise ValueError(
                f"payload of {len(data)} bytes exceeds page size "
                f"{self.geometry.page_data_bytes}"
            )
        latency = self.timing.write_us(frame.mode)
        injector = self.fault_injector
        if injector is not None and (
                injector.block_dead(address.block)
                or injector.program_fault(address.block, address.frame)):
            # The failed attempt still occupies the plane for the full
            # program time and leaves the page in an indeterminate
            # (non-erased) state.
            frame.states[address.subpage] = PageState.PROGRAMMED
            self.stats.programs += 1
            self.stats.record(latency, self.power.active_w, kind="program")
            self.clock_us += latency
            sink = self.op_sink
            if sink is not None:
                sink("program", address.block, latency)
            telemetry = self.telemetry
            if telemetry is not None:
                telemetry.nand_fault("program")
            raise ProgramFailure(address, latency_us=latency)
        frame.states[address.subpage] = PageState.PROGRAMMED
        if frame.data is not None:
            frame.data[address.subpage] = data
        self.stats.programs += 1
        self.stats.record(latency, self.power.active_w, kind="program")
        self.clock_us += latency
        sink = self.op_sink
        if sink is not None:
            sink("program", address.block, latency)
        model = self.reliability
        if model is not None:
            model.note_program(address.block, address.frame, self.clock_us)
        # No telemetry hook here: nand.* counters are harvested from
        # DeviceStats at end of run (Telemetry.harvest_cache_counters).
        return ProgramResult(latency_us=latency, mode=frame.mode)

    def erase_block(
        self,
        block: int,
        new_modes: Optional[Dict[int, CellMode]] = None,
    ) -> EraseResult:
        """Erase a block, optionally reconfiguring frame density modes.

        Mode changes take effect *at erase*, matching the controller
        protocol in section 5.2 ("the updated page settings are applied on
        the next erase and write access").  Each frame absorbs one damage
        unit per erase cycle.

        With a fault injector attached the operation can raise
        :class:`EraseFailure`; the attempt costs the full erase latency
        and leaves the block's contents untouched.
        """
        self._check_block(block)
        injector = self.fault_injector
        if injector is not None and (injector.block_dead(block)
                                     or injector.erase_fault(block)):
            latency = max(
                self.timing.erase_us(self._frame(block, index).mode)
                for index in range(self.geometry.frames_per_block)
            )
            self.stats.erases += 1
            self.stats.record(latency, self.power.active_w, kind="erase")
            self.clock_us += latency
            sink = self.op_sink
            if sink is not None:
                sink("erase", block, latency)
            telemetry = self.telemetry
            if telemetry is not None:
                telemetry.nand_erase(latency)
                telemetry.nand_fault("erase")
            raise EraseFailure(block, latency_us=latency)
        latencies = []
        for frame_index in range(self.geometry.frames_per_block):
            frame = self._frame(block, frame_index)
            latencies.append(self.timing.erase_us(frame.mode))
            frame.damage += 1.0
            if new_modes and frame_index in new_modes:
                frame.mode = new_modes[frame_index]
            pages = self.geometry.pages_per_frame(frame.mode)
            frame.states = [PageState.ERASED] * pages
            if self.store_data:
                frame.data = [None] * pages
        # The block erases as one pulse train; its latency is set by the
        # slowest frame mode present (MLC needs the longer staircase).
        latency = max(latencies)
        self._erase_counts[block] += 1
        self.stats.erases += 1
        self.stats.record(latency, self.power.active_w, kind="erase")
        self.clock_us += latency
        sink = self.op_sink
        if sink is not None:
            sink("erase", block, latency)
        model = self.reliability
        if model is not None:
            model.note_erase(block, self.clock_us,
                             self.geometry.frames_per_block)
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.nand_erase(latency)
        return EraseResult(latency_us=latency,
                           erase_count=self._erase_counts[block])

    # -- wear/error injection ---------------------------------------------------

    def _kill_frame(self, frame: _Frame) -> None:
        """Mark a frame's wear sampler dead (infant-mortality block)."""
        if self.lifetime_model is not None:
            self._sampler(frame).kill()

    def _raw_bit_errors(self, frame: _Frame) -> int:
        errors = self._transient_errors()
        if self.lifetime_model is None or frame.damage <= 0:
            return errors
        sensitivity = (
            MLC_READ_SENSITIVITY if frame.mode is CellMode.MLC else 1.0
        )
        return errors + self._sampler(frame).failed_cells(
            frame.damage * sensitivity)

    def _transient_errors(self) -> int:
        """Soft (non-persistent) errors for one read: Poisson-distributed
        with mean cells * rate, which is exact in the rare-error regime."""
        rate = self.soft_error_rate_per_bit
        if rate <= 0.0:
            return 0
        mean = rate * self.geometry.cells_per_frame
        # Knuth's algorithm suffices for the small means reliability
        # studies use (mean >> 10 would make every read uncorrectable).
        import math
        limit = math.exp(-mean)
        count, product = 0, self._rng.random()
        while product > limit:
            count += 1
            product *= self._rng.random()
        return count

    def raw_bit_errors_at(self, block: int, frame: int) -> int:
        """Current raw error count for a frame without a timed read."""
        return self._raw_bit_errors(self._frame(block, frame))

    def advance_clock(self, idle_us: float) -> None:
        """Deposit idle device time on :attr:`clock_us`.

        Operations advance the clock by their own latency; callers that
        model dwell time between operations (retention studies, the
        regime simulator) add it here so data genuinely ages while the
        device sits idle.
        """
        if idle_us < 0:
            raise ValueError("idle_us must be non-negative")
        self.clock_us += idle_us

    def age_block(self, block: int, cycles: float) -> None:
        """Deposit ``cycles`` W/E cycles of damage in every frame of a block
        without simulating each erase individually.

        Used by the accelerated (event-driven) lifetime simulations of
        Figures 11/12, where millions of W/E cycles elapse between
        interesting reliability events.  Page states are untouched — the
        caller represents steady-state rewrite traffic, after which the
        pages hold fresh data again.
        """
        self._check_block(block)
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        for frame_index in range(self.geometry.frames_per_block):
            self._frame(block, frame_index).damage += cycles
        self._erase_counts[block] += int(cycles)

    def next_error_damage(self, block: int, frame: int,
                          error_index: int) -> float:
        """Damage level (in W/E cycles as seen by an SLC read) at which the
        frame's ``error_index + 1``-th cell fails.

        Divide by :data:`MLC_READ_SENSITIVITY` for the cycle count at which
        an MLC read observes that failure.  ``math.inf`` when the device
        has no wear model.
        """
        if self.lifetime_model is None:
            return float("inf")
        return self._sampler(self._frame(block, frame)) \
            .next_failure_damage(error_index)

    def frame_read_sensitivity(self, block: int, frame: int) -> float:
        """Effective-damage multiplier of the frame's current mode."""
        mode = self._frame(block, frame).mode
        return MLC_READ_SENSITIVITY if mode is CellMode.MLC else 1.0

    def wear_summary(self) -> tuple[float, float]:
        """(max, average) frame damage across the whole array.

        Only materialised frames are scanned — lazily created frames no
        workload touched carry zero damage by construction — but the
        average divides by the *full* frame population so sparsely used
        devices report their true array-wide wear.
        """
        population = self.geometry.num_blocks * self.geometry.frames_per_block
        if population == 0:
            return 0.0, 0.0
        worst = 0.0
        total = 0.0
        for frame in self._frames.values():
            damage = frame.damage
            total += damage
            if damage > worst:
                worst = damage
        return worst, total / population

    # -- capacity ----------------------------------------------------------------

    def block_capacity_pages(self, block: int) -> int:
        """Logical pages the block currently provides given frame modes."""
        self._check_block(block)
        total = 0
        for frame_index in range(self.geometry.frames_per_block):
            total += self.geometry.pages_per_frame(
                self._frame(block, frame_index).mode
            )
        return total

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.geometry.num_blocks:
            raise EraseError(
                f"block {block} out of range "
                f"(device has {self.geometry.num_blocks} blocks)"
            )

    def __repr__(self) -> str:
        g = self.geometry
        return (
            f"FlashDevice(blocks={g.num_blocks}, "
            f"frames_per_block={g.frames_per_block}, "
            f"initial_mode={self.initial_mode.value})"
        )
